module Engine = Ash_sim.Engine
module Memory = Ash_sim.Memory
module Machine = Ash_sim.Machine
module Costs = Ash_sim.Costs
module Kernel = Ash_kern.Kernel
module Sched = Ash_kern.Sched
module Dpf = Ash_kern.Dpf
module Tcp = Ash_proto.Tcp
module Udp = Ash_proto.Udp
module Stats = Ash_util.Stats

type server_mode =
  | Srv_user
  | Srv_ash of { sandbox : bool }
  | Srv_upcall
  | Srv_hardwired

let vc = 7

let install_echo_server node mode =
  let kernel = node.Testbed.kernel in
  match mode with
  | Srv_user ->
    Kernel.bind_vc kernel ~vc Kernel.Deliver_user;
    Kernel.set_user_handler kernel ~vc (fun ~addr:_ ~len ->
        Kernel.user_send kernel ~vc (Bytes.make len 'r'))
  | Srv_ash _ | Srv_upcall | Srv_hardwired -> begin
      let hardwired = mode = Srv_hardwired in
      let sandbox =
        match mode with Srv_ash { sandbox } -> sandbox | _ -> false
      in
      match Kernel.download_ash kernel ~sandbox ~hardwired (Handlers.echo ())
      with
      | Error e ->
        failwith (Format.asprintf "echo rejected: %a" Ash_vm.Verify.pp_error e)
      | Ok id ->
        let delivery =
          match mode with
          | Srv_upcall -> Kernel.Deliver_upcall id
          | _ -> Kernel.Deliver_ash id
        in
        Kernel.bind_vc kernel ~vc delivery
    end

(* A user-level polling client that ping-pongs [iters] times and records
   per-round-trip samples. *)
let user_client tb ~payload_len ~iters ~samples =
  let client = tb.Testbed.client in
  let kernel = client.Testbed.kernel in
  Kernel.bind_vc kernel ~vc Kernel.Deliver_user;
  Kernel.set_auto_repost kernel ~vc true;
  Testbed.post_buffers client ~vc ~count:4 ~size:(max payload_len 64);
  let t0 = ref 0 in
  let remaining = ref iters in
  let send () =
    t0 := Engine.now tb.Testbed.engine;
    Kernel.user_send kernel ~vc (Bytes.make payload_len 'p')
  in
  Kernel.set_user_handler kernel ~vc (fun ~addr:_ ~len:_ ->
      samples :=
        (float_of_int (Engine.now tb.Testbed.engine - !t0) /. 1000.)
        :: !samples;
      decr remaining;
      if !remaining > 0 then send ());
  send

let summarize_steady samples =
  (* Drop the first (cold) sample when there are enough. *)
  match List.rev samples with
  | _ :: (_ :: _ as rest) -> Stats.summarize rest
  | other -> Stats.summarize other

let raw_pingpong ?(payload_len = 4) ?(iters = 11) ?(server_suspended = false)
    ?(client_costs = Costs.decstation) mode =
  let tb = Testbed.create ~client_costs () in
  install_echo_server tb.Testbed.server mode;
  Kernel.set_auto_repost tb.Testbed.server.Testbed.kernel ~vc true;
  Testbed.post_buffers tb.Testbed.server ~vc ~count:4
    ~size:(max payload_len 64);
  if server_suspended then
    Kernel.set_app_state tb.Testbed.server.Testbed.kernel Kernel.Suspended;
  let samples = ref [] in
  let send = user_client tb ~payload_len ~iters ~samples in
  send ();
  Testbed.run tb;
  summarize_steady !samples

let inkernel_pingpong ?(payload_len = 4) ?(iters = 10) () =
  let tb = Testbed.create () in
  let client = tb.Testbed.client and server = tb.Testbed.server in
  install_echo_server server Srv_hardwired;
  Kernel.set_auto_repost server.Testbed.kernel ~vc true;
  Testbed.post_buffers server ~vc ~count:4 ~size:(max payload_len 64);
  (* Client: a hardwired handler that bounces until the counter drains. *)
  let state = Testbed.alloc client ~name:"pp-state" 16 in
  let mem = Machine.mem (Kernel.machine client.Testbed.kernel) in
  Memory.store32 mem state.Memory.base (iters - 1);
  (match
     Kernel.download_ash client.Testbed.kernel ~sandbox:false ~hardwired:true
       (Handlers.pingpong_client ~state_addr:state.Memory.base)
   with
   | Error e ->
     failwith (Format.asprintf "client rejected: %a" Ash_vm.Verify.pp_error e)
   | Ok id -> Kernel.bind_vc client.Testbed.kernel ~vc (Kernel.Deliver_ash id));
  Kernel.set_auto_repost client.Testbed.kernel ~vc true;
  Testbed.post_buffers client ~vc ~count:4 ~size:(max payload_len 64);
  let start = Engine.now tb.Testbed.engine in
  Kernel.kernel_send client.Testbed.kernel ~vc (Bytes.make payload_len 'k');
  Testbed.run tb;
  let elapsed = Engine.now tb.Testbed.engine - start in
  assert (Memory.load32 mem (state.Memory.base + 4) = 1);
  float_of_int elapsed /. 1000. /. float_of_int iters

let remote_increment ?(iters = 11) ?(server_suspended = false) ?nprocs
    ?(policy = Sched.Oblivious_rr) ?(server_costs = Costs.decstation) mode =
  let tb = Testbed.create ~server_costs () in
  let server = tb.Testbed.server in
  let kernel = server.Testbed.kernel in
  let slot = Testbed.alloc server ~name:"incr-slot" 8 in
  let prog = Handlers.remote_increment ~slot_addr:slot.Memory.base in
  let ash_id = ref None in
  (match mode with
   | Srv_user ->
     Kernel.bind_vc kernel ~vc Kernel.Deliver_user;
     (* The user-level server: parse, increment, reply — the same work
        as the handler, performed by the application. *)
     let mem = Machine.mem (Kernel.machine kernel) in
     Kernel.set_user_handler kernel ~vc (fun ~addr ~len:_ ->
         let delta = Memory.load32 mem (addr + 4) in
         let cur = Memory.load32 mem slot.Memory.base in
         Memory.store32 mem slot.Memory.base (cur + delta);
         Kernel.app_compute kernel 1_000;
         let reply = Bytes.create 4 in
         Ash_util.Bytesx.set_u32 reply 0 (cur + delta);
         Kernel.user_send kernel ~vc reply)
   | Srv_ash { sandbox } -> begin
       match Kernel.download_ash kernel ~sandbox prog with
       | Error e ->
         failwith (Format.asprintf "rejected: %a" Ash_vm.Verify.pp_error e)
       | Ok id ->
         ash_id := Some id;
         Kernel.bind_vc kernel ~vc (Kernel.Deliver_ash id)
     end
   | Srv_upcall -> begin
       match Kernel.download_ash kernel ~sandbox:false prog with
       | Error e ->
         failwith (Format.asprintf "rejected: %a" Ash_vm.Verify.pp_error e)
       | Ok id ->
         ash_id := Some id;
         Kernel.bind_vc kernel ~vc (Kernel.Deliver_upcall id)
     end
   | Srv_hardwired -> begin
       match Kernel.download_ash kernel ~sandbox:false ~hardwired:true prog with
       | Error e ->
         failwith (Format.asprintf "rejected: %a" Ash_vm.Verify.pp_error e)
       | Ok id ->
         ash_id := Some id;
         Kernel.bind_vc kernel ~vc (Kernel.Deliver_ash id)
     end);
  Kernel.set_auto_repost kernel ~vc true;
  Testbed.post_buffers server ~vc ~count:4 ~size:64;
  if server_suspended then Kernel.set_app_state kernel Kernel.Suspended;
  (match nprocs with
   | Some n -> Kernel.setup_scheduler kernel ~policy ~nprocs:n
   | None -> ());
  (* Client: user-level polling sender of [magic | delta] requests. *)
  let client = tb.Testbed.client in
  let ckernel = client.Testbed.kernel in
  Kernel.bind_vc ckernel ~vc Kernel.Deliver_user;
  Kernel.set_auto_repost ckernel ~vc true;
  Testbed.post_buffers client ~vc ~count:4 ~size:64;
  let samples = ref [] in
  let t0 = ref 0 in
  let remaining = ref iters in
  let request =
    let b = Bytes.create 8 in
    Ash_util.Bytesx.set_u32 b 0 0xA5A5A5A5;
    Ash_util.Bytesx.set_u32 b 4 1;
    b
  in
  let send () =
    t0 := Engine.now tb.Testbed.engine;
    Kernel.user_send ckernel ~vc (Bytes.copy request)
  in
  Kernel.set_user_handler ckernel ~vc (fun ~addr:_ ~len:_ ->
      samples :=
        (float_of_int (Engine.now tb.Testbed.engine - !t0) /. 1000.)
        :: !samples;
      decr remaining;
      if !remaining > 0 then send ());
  send ();
  Testbed.run tb;
  let last = Option.map (Kernel.ash_last_result kernel) !ash_id in
  (summarize_steady !samples, Option.join last)

let raw_train_throughput ~size ~count () =
  let tb = Testbed.create () in
  let client = tb.Testbed.client and server = tb.Testbed.server in
  (* Server: count packets; after the last, reply with a 4-byte ack. *)
  Kernel.bind_vc server.Testbed.kernel ~vc Kernel.Deliver_user;
  Kernel.set_auto_repost server.Testbed.kernel ~vc true;
  Testbed.post_buffers server ~vc ~count:(count + 4) ~size;
  let seen = ref 0 in
  Kernel.set_user_handler server.Testbed.kernel ~vc (fun ~addr:_ ~len:_ ->
      incr seen;
      if !seen = count then
        Kernel.user_send server.Testbed.kernel ~vc (Bytes.make 4 'a'));
  Kernel.bind_vc client.Testbed.kernel ~vc Kernel.Deliver_user;
  Kernel.set_auto_repost client.Testbed.kernel ~vc true;
  Testbed.post_buffers client ~vc ~count:2 ~size:64;
  let finished = ref 0 in
  Kernel.set_user_handler client.Testbed.kernel ~vc (fun ~addr:_ ~len:_ ->
      finished := Engine.now tb.Testbed.engine);
  let start = Engine.now tb.Testbed.engine in
  for _ = 1 to count do
    Kernel.user_send client.Testbed.kernel ~vc (Bytes.make size 'd')
  done;
  Testbed.run tb;
  assert (!finished > start);
  Ash_sim.Time.mbytes_per_sec ~bytes:(size * count) (!finished - start)

let eth_pingpong ?(payload_len = 4) ?(iters = 10) () =
  let tb = Testbed.create ~ethernet:true () in
  let client = tb.Testbed.client and server = tb.Testbed.server in
  (* Trivial accept-all filters, compiled, on both sides. *)
  let svc =
    Kernel.bind_eth_filter server.Testbed.kernel [] ~compiled:true
      Kernel.Deliver_user
  in
  Kernel.set_user_handler server.Testbed.kernel ~vc:svc (fun ~addr:_ ~len ->
      Kernel.eth_user_send server.Testbed.kernel (Bytes.make len 'r'));
  let cvc =
    Kernel.bind_eth_filter client.Testbed.kernel [] ~compiled:true
      Kernel.Deliver_user
  in
  let samples = ref [] in
  let t0 = ref 0 in
  let remaining = ref iters in
  let send () =
    t0 := Engine.now tb.Testbed.engine;
    Kernel.eth_user_send client.Testbed.kernel (Bytes.make payload_len 'p')
  in
  Kernel.set_user_handler client.Testbed.kernel ~vc:cvc (fun ~addr:_ ~len:_ ->
      samples :=
        (float_of_int (Engine.now tb.Testbed.engine - !t0) /. 1000.)
        :: !samples;
      decr remaining;
      if !remaining > 0 then send ());
  send ();
  Testbed.run tb;
  (summarize_steady !samples).Stats.mean

(* ------------------------------------------------------------------ *)
(* UDP                                                                 *)
(* ------------------------------------------------------------------ *)

let udp_pair ~checksum ~in_place ~medium tb =
  let mk local remote kernel =
    let medium =
      match medium with
      | `An2 -> Udp.An2 { vc = 5 }
      | `Eth -> Udp.Ethernet
    in
    Udp.create kernel
      { Udp.default_config with
        Udp.medium; checksum; in_place; local_port = local;
        remote_port = remote;
        mtu_payload =
          (match medium with
           | Udp.An2 _ -> 3072 - 28
           | Udp.Ethernet -> 1472) }
  in
  let c = mk 7000 7001 tb.Testbed.client.Testbed.kernel in
  let s = mk 7001 7000 tb.Testbed.server.Testbed.kernel in
  (c, s)

let udp_latency ~checksum ~in_place ~medium () =
  let ethernet = medium = `Eth in
  let tb = Testbed.create ~ethernet () in
  let c, s = udp_pair ~checksum ~in_place ~medium tb in
  Udp.set_receiver s (fun ~addr:_ ~len -> Udp.send_string s (String.make len 'r'));
  let samples = ref [] in
  let t0 = ref 0 in
  let remaining = ref 11 in
  let send () =
    t0 := Engine.now tb.Testbed.engine;
    Udp.send_string c "ping"
  in
  Udp.set_receiver c (fun ~addr:_ ~len:_ ->
      samples :=
        (float_of_int (Engine.now tb.Testbed.engine - !t0) /. 1000.)
        :: !samples;
      decr remaining;
      if !remaining > 0 then send ());
  send ();
  Testbed.run tb;
  (summarize_steady !samples).Stats.mean

let udp_train_throughput ~checksum ~in_place ~medium ?(train = 6) ?(rounds = 8)
    () =
  let ethernet = medium = `Eth in
  let tb = Testbed.create ~ethernet () in
  let c, s = udp_pair ~checksum ~in_place ~medium tb in
  let size = match medium with `An2 -> 3072 - 28 | `Eth -> 1472 in
  let payload = Testbed.alloc_filled tb.Testbed.client ~seed:3 size in
  let seen = ref 0 in
  Udp.set_receiver s (fun ~addr:_ ~len:_ ->
      incr seen;
      if !seen mod train = 0 then Udp.send_string s "ack!");
  let start = Engine.now tb.Testbed.engine in
  let finished = ref start in
  let remaining = ref rounds in
  let send_train () =
    for _ = 1 to train do
      Udp.send c ~addr:payload.Memory.base ~len:size
    done
  in
  Udp.set_receiver c (fun ~addr:_ ~len:_ ->
      decr remaining;
      if !remaining > 0 then send_train ()
      else finished := Engine.now tb.Testbed.engine);
  send_train ();
  Testbed.run tb;
  Ash_sim.Time.mbytes_per_sec
    ~bytes:(size * train * rounds)
    (!finished - start)

(* ------------------------------------------------------------------ *)
(* TCP                                                                 *)
(* ------------------------------------------------------------------ *)

let tcp_pair ~mode ~checksum ~in_place ?(mss = 3072) ?(suspended = false)
    ?(medium = `An2) ?(rto = Tcp.default_rto) ?(fast_retransmit = true) tb =
  let tcp_medium =
    match medium with
    | `An2 -> Tcp.Tcp_an2 { vc = 6 }
    | `Eth -> Tcp.Tcp_ethernet
  in
  let mss = match medium with `An2 -> mss | `Eth -> min mss 1460 in
  let mk local remote iss kernel =
    Tcp.create kernel
      { Tcp.default_config with
        Tcp.medium = tcp_medium; local_port = local; remote_port = remote;
        iss; mode; checksum; in_place; mss; rto; fast_retransmit }
  in
  let c = mk 4000 4001 1000 tb.Testbed.client.Testbed.kernel in
  let s = mk 4001 4000 5000 tb.Testbed.server.Testbed.kernel in
  Tcp.listen s;
  let connected = ref false in
  Tcp.connect c ~on_connected:(fun () -> connected := true);
  Testbed.run tb;
  if not !connected then failwith "Lab.tcp_pair: connection failed";
  if suspended then begin
    Kernel.set_app_state tb.Testbed.client.Testbed.kernel Kernel.Suspended;
    Kernel.set_app_state tb.Testbed.server.Testbed.kernel Kernel.Suspended
  end;
  (c, s)

let tcp_latency ~mode ~checksum ?(suspended = false) ?(iters = 11)
    ?(medium = `An2) () =
  let tb = Testbed.create ~ethernet:(medium = `Eth) () in
  let c, s = tcp_pair ~mode ~checksum ~in_place:false ~suspended ~medium tb in
  Tcp.set_reader s (fun ~addr:_ ~len ->
      Tcp.write_string s (String.make len 'r') ~on_complete:(fun () -> ()));
  let samples = ref [] in
  let t0 = ref 0 in
  let remaining = ref iters in
  let send () =
    t0 := Engine.now tb.Testbed.engine;
    Tcp.write_string c "ping" ~on_complete:(fun () -> ())
  in
  Tcp.set_reader c (fun ~addr:_ ~len:_ ->
      samples :=
        (float_of_int (Engine.now tb.Testbed.engine - !t0) /. 1000.)
        :: !samples;
      decr remaining;
      if !remaining > 0 then send ());
  send ();
  Testbed.run tb;
  (summarize_steady !samples).Stats.mean

let tcp_throughput ~mode ~checksum ~in_place ?(mss = 3072) ?(chunk = 8192)
    ?(total = 2 * 1024 * 1024) ?(suspended = false) ?(medium = `An2) () =
  let tb = Testbed.create ~ethernet:(medium = `Eth) () in
  let c, s = tcp_pair ~mode ~checksum ~in_place ~mss ~suspended ~medium tb in
  Tcp.set_reader s (fun ~addr:_ ~len:_ -> ());
  let src = Testbed.alloc_filled tb.Testbed.client ~seed:1 chunk in
  let start = Engine.now tb.Testbed.engine in
  let sent = ref 0 in
  let rec send_chunk () =
    if !sent < total then begin
      sent := !sent + chunk;
      Tcp.write c ~addr:src.Memory.base ~len:chunk ~on_complete:send_chunk
    end
  in
  send_chunk ();
  Testbed.run tb;
  let dt = Engine.now tb.Testbed.engine - start in
  ( float_of_int total /. (float_of_int dt /. 1e9) /. 1e6,
    Tcp.stats s )
