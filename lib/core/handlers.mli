(** The canonical handlers of the paper's experiments, written against
    the VCODE-like builder exactly as an application programmer would
    write them (§II-A: protocol/application preamble, data manipulation,
    then commit or abort code).

    Each returns an unassembled-from-source {!Ash_vm.Program.t} ready to
    be passed to {!Ash_kern.Kernel.download_ash} (which verifies and
    optionally sandboxes it). *)

val echo : unit -> Ash_vm.Program.t
(** Reply with the incoming message verbatim and consume it — the
    server side of the raw latency benchmarks (Table I). *)

val remote_increment : slot_addr:int -> Ash_vm.Program.t
(** The remote-increment active message of Table V. Message format:
    [magic(4) | delta(4)]. The handler validates the magic (protocol
    preamble), adds [delta] to the 32-bit application word at
    [slot_addr], overwrites the message's first word with the new value,
    replies with those 4 bytes, and commits. A bad magic takes the
    voluntary-abort path, falling back to user-level delivery. *)

val pingpong_client : state_addr:int -> Ash_vm.Program.t
(** In-kernel ping-pong client (Table I's "in-kernel AN2" row): on each
    reply, decrement the remaining-iterations counter at [state_addr];
    if zero, set the done flag at [state_addr+4] and stop; otherwise
    bounce the message back. *)

val remote_write_generic :
  ?msg_off:int -> table_addr:int -> entries:int -> unit -> Ash_vm.Program.t
(** The generic remote write of §V-D, after Thekkath et al.: message is
    [seg(4) | off(4) | size(4) | data], starting [msg_off] bytes into
    the raw message (default 0; pass 28 when the handler sees whole
    IP+UDP frames off an Ethernet DPF binding). The handler
    bounds-checks [seg] against the translation table at [table_addr]
    (pairs of [base, limit] words), validates [off + size <= limit],
    and copies the data via the trusted engine. Aborts on any
    validation failure. *)

val remote_write_specific : unit -> Ash_vm.Program.t
(** The application-specific remote write of §V-D: trusted peers send
    [ptr(4) | size(4) | data], and the handler copies directly — "the
    handler assumes it is given a pointer to memory, instead of a
    segment descriptor and offset". Fewer instructions than the generic
    version even after sandboxing, the paper's headline §V-D claim. *)

val remote_write_guarded : unit -> Ash_vm.Program.t
(** {!remote_write_specific} plus a two-instruction runt guard before
    the header loads. The guard makes both loads provably in-bounds, so
    download-time analysis ({!Ash_vm.Absint}) elides their sandbox
    checks — the "smarter sandboxer" §V-D speculates about. *)

val dilp_deposit : dilp_id:int -> dst_addr:int -> Ash_vm.Program.t
(** Message vectoring with integrated processing: run the registered
    DILP transfer [dilp_id] over the whole message, depositing it at
    [dst_addr]; abort (fall back to the library) if the transfer engine
    rejects. Exercises the [K_dilp] kernel call from handler code. *)

(** {1 Replicated message-queue handlers}

    The in-kernel data plane of {!Mq}: produce (offset assignment +
    append), replicate-apply, and fetch/poll over three memory
    segments — a log ring of [1 lsl mq_slot_shift]-byte slots, a
    one-word offset counter, and a per-producer session table of
    [(last_seq, last_offset)] pairs that doubles as the dedup window.

    Wire format after [mq_net_off] transport bytes:
    [magic | op | producer | seq | offset | client_ip | client_port |
    payload_len | payload...] — all 32-bit big-endian words
    ({!mq_header} bytes before the payload). Log slots hold
    [producer | seq | len | reserved | payload]. *)

val mq_magic : int

val mq_header : int
(** Bytes of MQ header between the transport header and the payload. *)

val mq_op_produce : int
val mq_op_produce_ack : int
val mq_op_fetch : int
val mq_op_fetch_resp : int
val mq_op_poll : int
val mq_op_poll_resp : int
val mq_op_replicate : int

val mq_ctr_appends : int
(** Counter-segment offsets bumped by the handlers: appends, dedup
    hits, below-window drops, replication-gap drops; {!mq_ctr_len}
    bytes total. *)

val mq_ctr_dup : int
val mq_ctr_stale : int
val mq_ctr_gap : int
val mq_ctr_len : int

type mq_geometry = {
  mq_net_off : int;  (** transport header bytes before the MQ header *)
  mq_capacity : int;  (** log slots *)
  mq_producers : int;  (** session-table entries *)
  mq_slot_shift : int;  (** log2 of the log-slot stride *)
  mq_meta : int;  (** address of the offset counter (one word) *)
  mq_log : int;  (** address of the log ring *)
  mq_sess : int;  (** address of the session table (8 B per producer) *)
  mq_ctr : int;  (** address of the counter segment *)
}

val mq_payload_max : mq_geometry -> int
(** Largest payload a slot can hold: the stride minus the 16-byte slot
    header. *)

(** How a produce handler answers: [Mq_chain] rewrites the validated
    frame into a replicate and sends it to the peer broker — the ack
    then originates from the replica, so an acked message is durable on
    both logs. [Mq_solo] acks the client directly (the failover
    configuration). *)
type mq_route =
  | Mq_chain of {
      self_ip : int;
      peer_ip : int;
      produce_port : int;
      repl_port : int;
    }
  | Mq_solo

val mq_produce : mq_geometry -> mq_route -> Ash_vm.Program.t
(** Per-producer dedup against the session table ([seq = last] re-acks
    the stored offset without appending; out-of-window seqs are counted
    and dropped without a reply), in-sequence append at the head
    offset, then answer per {!mq_route}. Aborts on malformed frames and
    on a full log. *)

val mq_replicate :
  mq_geometry -> self_ip:int -> produce_port:int -> Ash_vm.Program.t
(** Replica-side apply: session-based acceptance ([seq = last+1] and
    [offset = count] appends and acks the client named in the frame;
    [seq = last] re-acks the stored offset; anything else is counted —
    stale or replication-gap — and dropped so the replica's log stays a
    gapless dedup-protected prefix). *)

val mq_fetch : mq_geometry -> Ash_vm.Program.t
(** Fetch-by-offset and poll. A fetch below the head copies the slot
    into the request frame and returns [mq_op_fetch_resp]; a fetch at
    or past the head, and every poll, returns [mq_op_poll_resp]
    carrying the head offset. Requests must be padded to a full slot so
    the in-place payload copy stays inside the frame. *)
