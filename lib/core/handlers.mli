(** The canonical handlers of the paper's experiments, written against
    the VCODE-like builder exactly as an application programmer would
    write them (§II-A: protocol/application preamble, data manipulation,
    then commit or abort code).

    Each returns an unassembled-from-source {!Ash_vm.Program.t} ready to
    be passed to {!Ash_kern.Kernel.download_ash} (which verifies and
    optionally sandboxes it). *)

val echo : unit -> Ash_vm.Program.t
(** Reply with the incoming message verbatim and consume it — the
    server side of the raw latency benchmarks (Table I). *)

val remote_increment : slot_addr:int -> Ash_vm.Program.t
(** The remote-increment active message of Table V. Message format:
    [magic(4) | delta(4)]. The handler validates the magic (protocol
    preamble), adds [delta] to the 32-bit application word at
    [slot_addr], overwrites the message's first word with the new value,
    replies with those 4 bytes, and commits. A bad magic takes the
    voluntary-abort path, falling back to user-level delivery. *)

val pingpong_client : state_addr:int -> Ash_vm.Program.t
(** In-kernel ping-pong client (Table I's "in-kernel AN2" row): on each
    reply, decrement the remaining-iterations counter at [state_addr];
    if zero, set the done flag at [state_addr+4] and stop; otherwise
    bounce the message back. *)

val remote_write_generic :
  ?msg_off:int -> table_addr:int -> entries:int -> unit -> Ash_vm.Program.t
(** The generic remote write of §V-D, after Thekkath et al.: message is
    [seg(4) | off(4) | size(4) | data], starting [msg_off] bytes into
    the raw message (default 0; pass 28 when the handler sees whole
    IP+UDP frames off an Ethernet DPF binding). The handler
    bounds-checks [seg] against the translation table at [table_addr]
    (pairs of [base, limit] words), validates [off + size <= limit],
    and copies the data via the trusted engine. Aborts on any
    validation failure. *)

val remote_write_specific : unit -> Ash_vm.Program.t
(** The application-specific remote write of §V-D: trusted peers send
    [ptr(4) | size(4) | data], and the handler copies directly — "the
    handler assumes it is given a pointer to memory, instead of a
    segment descriptor and offset". Fewer instructions than the generic
    version even after sandboxing, the paper's headline §V-D claim. *)

val remote_write_guarded : unit -> Ash_vm.Program.t
(** {!remote_write_specific} plus a two-instruction runt guard before
    the header loads. The guard makes both loads provably in-bounds, so
    download-time analysis ({!Ash_vm.Absint}) elides their sandbox
    checks — the "smarter sandboxer" §V-D speculates about. *)

val dilp_deposit : dilp_id:int -> dst_addr:int -> Ash_vm.Program.t
(** Message vectoring with integrated processing: run the registered
    DILP transfer [dilp_id] over the whole message, depositing it at
    [dst_addr]; abort (fall back to the library) if the transfer engine
    rejects. Exercises the [K_dilp] kernel call from handler code. *)
