(* The replicated message-queue service: the robustness showcase of the
   handler architecture. The data plane — produce with offset
   assignment and append, replicate-apply, fetch and poll — runs
   entirely as ASHs over plain memory segments on two broker hosts
   ({!Handlers.mq_produce} and friends); the OCaml code here is only
   control plane: request framing, retry with exponential backoff,
   failover redirection, chaos scheduling, and the delivery audit.

   Delivery contract (the at-least-once argument, DESIGN.md §13):
   - every produce carries a per-producer sequence number; the client
     is stop-and-wait, so at most one sequence per producer is ever
     unacknowledged;
   - brokers keep a per-producer session [(last_seq, last_offset)].
     A retried duplicate ([seq = last]) is re-acked with the stored
     offset and never re-appended; below-window and out-of-window
     sequences are counted and dropped without an ack;
   - the primary's produce handler chains a replicate to the replica
     inside the handler, and the *replica* acks the client — an ack
     therefore implies the message is durable on both logs at the same
     offset. After failover the client produces to the replica
     directly and the solo path acks the same way;
   - the replica's log is append-only in every scenario this module
     schedules (only the primary is crashed, partitioned, or wiped),
     so it is the authoritative log: consumers fetch from it, and the
     audit replays it. Re-syncing a lost *replica* is out of scope,
     and recorded as such in DESIGN.md. *)

module Engine = Ash_sim.Engine
module Memory = Ash_sim.Memory
module Machine = Ash_sim.Machine
module Fault = Ash_sim.Fault
module Kernel = Ash_kern.Kernel
module Dpf = Ash_kern.Dpf
module Ethernet = Ash_nic.Ethernet
module Switch = Ash_nic.Switch
module Packet = Ash_proto.Packet
module Trace = Ash_obs.Trace
module Timeseries = Ash_obs.Timeseries
module Bytesx = Ash_util.Bytesx

let net_off = Packet.ip_header_len + Packet.udp_header_len
let off_magic = net_off
let off_op = net_off + 4
let off_producer = net_off + 8
let off_seq = net_off + 12
let off_offset = net_off + 16
let off_client_ip = net_off + 20
let off_client_port = net_off + 24
let off_len = net_off + 28
let off_payload = net_off + Handlers.mq_header
let slot_shift = 6
let slot_stride = 1 lsl slot_shift
let payload_max = slot_stride - 16

type spec = {
  producers : int;  (* one producer process per host, hosts 2.. *)
  capacity : int;  (* log slots per broker *)
  payload_words : int;  (* 32-bit words per message, 1..12 *)
  produce_port : int;
  repl_port : int;
  fetch_port : int;
  retry_base_ns : int;  (* first retransmit timeout *)
  retry_cap_ns : int;  (* backoff ceiling *)
  redirect_after : int;  (* consecutive timeouts before failover *)
  max_attempts : int;  (* audit bound, not a give-up threshold *)
  housekeep_ns : int;  (* broker telemetry tick *)
  consumer_rto_ns : int;  (* consumer re-fetch timeout *)
  horizon_ns : int;  (* periodic ticks stop here so [Fabric.run]
                        style full drains still terminate *)
}

let default_spec =
  {
    producers = 2;
    capacity = 1024;
    payload_words = 8;
    produce_port = 8_100;
    repl_port = 8_101;
    fetch_port = 8_102;
    retry_base_ns = 2_000_000;
    retry_cap_ns = 32_000_000;
    redirect_after = 3;
    max_attempts = 64;
    housekeep_ns = 1_000_000;
    consumer_rto_ns = 4_000_000;
    horizon_ns = 10_000_000_000;
  }

(* Per-broker state. Counter *bases* carry the machine counters across
   crashes: the crash action folds the about-to-be-wiped values into
   [b_base], so totals stay monotonic and the housekeeping deltas stay
   exact. [b_seen] is how much of each total has already been emitted
   as [drops.mq.*] trace events. *)
type broker = {
  b_host : int;
  b_meta : Memory.region;
  b_log : Memory.region;
  b_sess : Memory.region;
  b_ctr : Memory.region;
  b_base : int array;  (* appends, dup, stale, gap *)
  b_seen : int array;
  mutable b_down : bool;
}

type producer = {
  p_idx : int;
  p_host : int;
  p_port : int;
  mutable p_target : int;  (* broker index currently produced to *)
  mutable p_next_seq : int;
  mutable p_pending : int;  (* messages queued behind the inflight one *)
  mutable p_scheduled : int;  (* enqueues scheduled but not yet fired *)
  mutable p_inflight : int;  (* 0 = idle, else the unacked seq *)
  mutable p_attempt : int;
  mutable p_streak : int;  (* consecutive timeouts on p_target *)
  mutable p_gen : int;  (* invalidates retry timers on ack *)
  mutable p_acked : (int * int * int) list;  (* seq, offset, ts; newest first *)
  mutable p_redeliveries : int;
  mutable p_max_attempt : int;
  mutable p_last_ack_ts : int;  (* -1 until the first send *)
  mutable p_max_gap_ns : int;  (* widest send→ack / ack→ack gap *)
}

type await = A_none | A_fetch of int | A_poll

type consumer = {
  k_idx : int;
  k_host : int;
  k_port : int;
  mutable k_cursor : int;
  mutable k_head : int;  (* broker head as last reported *)
  mutable k_await : await;
  mutable k_sent_at : int;
  mutable k_attempt : int;
  mutable k_refetches : int;
  mutable k_delivered : (int * int * int * bool) list;
      (* offset, producer, seq, payload_ok; newest first *)
}

type t = {
  fab : Fabric.t;
  spec : spec;
  t0 : int;  (* virtual time at creation; all scheduling offsets are
                relative to it (ARP warm-up consumes virtual time) *)
  brokers : broker array;  (* [| primary (host 0); replica (host 1) |] *)
  prods : producer array;
  mutable consumers : consumer list;
}

(* Deterministic payload contents: word [w] of message [seq] from
   [producer]. The audit recomputes this, so any corruption or
   cross-wiring in the data path surfaces as a payload mismatch. *)
let payload_word ~producer ~seq ~w =
  (((producer + 1) * 0x9E3779B1) + (seq * 0x85EBCA6B) + (w * 0x27D4EB2F))
  land 0xFFFFFFFF

let service_filter port =
  [
    Dpf.atom ~offset:9 ~width:1 Packet.Ip.proto_udp;
    Dpf.atom ~offset:(Packet.ip_header_len + 2) ~width:2 port;
  ]

let geometry t bi =
  let b = t.brokers.(bi) in
  {
    Handlers.mq_net_off = net_off;
    mq_capacity = t.spec.capacity;
    mq_producers = t.spec.producers;
    mq_slot_shift = slot_shift;
    mq_meta = b.b_meta.Memory.base;
    mq_log = b.b_log.Memory.base;
    mq_sess = b.b_sess.Memory.base;
    mq_ctr = b.b_ctr.Memory.base;
  }

let broker_mem t bi =
  Machine.mem
    (Kernel.machine (Fabric.host t.fab t.brokers.(bi).b_host).Fabric.kernel)

(* Totals that survive crashes: carried base plus the live machine
   counter (zero while wiped). *)
let ctr_total t bi off =
  let b = t.brokers.(bi) in
  b.b_base.(off / 4) + Memory.load32 (broker_mem t bi) (b.b_ctr.Memory.base + off)

let log_count t bi =
  Memory.load32 (broker_mem t bi) t.brokers.(bi).b_meta.Memory.base

let install_handler k prog port =
  match Kernel.download_ash k prog with
  | Error e -> failwith ("Mq: handler rejected: " ^ e.Ash_vm.Verify.reason)
  | Ok id ->
    let vc =
      Kernel.bind_eth_filter k (service_filter port) ~compiled:true
        (Kernel.Deliver_ash id)
    in
    Kernel.set_auto_repost k ~vc true;
    (* Aborted frames (malformed, log full) fall back to user delivery;
       the broker process just drops them. *)
    Kernel.set_user_handler k ~vc (fun ~addr:_ ~len:_ -> ())

(* (Re)install a broker's data plane: downloads and DPF bindings. Also
   the heal action after a crash — [Kernel.reboot] removed every
   binding, so this brings the broker back cold. *)
let install_broker t bi =
  let b = t.brokers.(bi) in
  let node = Fabric.host t.fab b.b_host in
  let peer = Fabric.host t.fab t.brokers.(1 - bi).b_host in
  let geo = geometry t bi in
  let route =
    if bi = 0 then
      Handlers.Mq_chain
        {
          self_ip = node.Fabric.ip;
          peer_ip = peer.Fabric.ip;
          produce_port = t.spec.produce_port;
          repl_port = t.spec.repl_port;
        }
    else Handlers.Mq_solo
  in
  install_handler node.Fabric.kernel (Handlers.mq_produce geo route)
    t.spec.produce_port;
  install_handler node.Fabric.kernel (Handlers.mq_fetch geo) t.spec.fetch_port;
  if bi = 1 then
    install_handler node.Fabric.kernel
      (Handlers.mq_replicate geo ~self_ip:node.Fabric.ip
         ~produce_port:t.spec.produce_port)
      t.spec.repl_port

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let base_frame t ~src ~dst ~src_port ~dst_port ~op ~producer ~seq ~offset
    ~payload_len =
  let total = off_payload + payload_len in
  let fr = Bytes.make total '\000' in
  Packet.Ip.write fr ~off:0
    {
      Packet.Ip.src = (Fabric.host t.fab src).Fabric.ip;
      dst = (Fabric.host t.fab dst).Fabric.ip;
      proto = Packet.Ip.proto_udp;
      total_len = total;
      ttl = 64;
      id = (producer lxor seq) land 0xFFFF;
    };
  Packet.Udp.write fr ~off:Packet.ip_header_len
    {
      Packet.Udp.src_port;
      dst_port;
      length = Packet.udp_header_len + Handlers.mq_header + payload_len;
      checksum = 0;
    };
  Bytesx.set_u32 fr off_magic Handlers.mq_magic;
  Bytesx.set_u32 fr off_op op;
  Bytesx.set_u32 fr off_producer producer;
  Bytesx.set_u32 fr off_seq seq;
  Bytesx.set_u32 fr off_offset offset;
  Bytesx.set_u32 fr off_client_ip (Fabric.host t.fab src).Fabric.ip;
  Bytesx.set_u32 fr off_client_port src_port;
  Bytesx.set_u32 fr off_len payload_len;
  fr

let produce_frame t p =
  let plen = t.spec.payload_words * 4 in
  let fr =
    base_frame t ~src:p.p_host ~dst:t.brokers.(p.p_target).b_host
      ~src_port:p.p_port ~dst_port:t.spec.produce_port
      ~op:Handlers.mq_op_produce ~producer:p.p_idx ~seq:p.p_inflight ~offset:0
      ~payload_len:plen
  in
  for w = 0 to t.spec.payload_words - 1 do
    Bytesx.set_u32 fr
      (off_payload + (4 * w))
      (payload_word ~producer:p.p_idx ~seq:p.p_inflight ~w)
  done;
  fr

(* Consumer requests are padded to a full slot so the fetch handler's
   in-place payload copy stays inside the frame. *)
let consumer_frame t c ~op ~offset =
  base_frame t ~src:c.k_host ~dst:t.brokers.(1).b_host ~src_port:c.k_port
    ~dst_port:t.spec.fetch_port ~op ~producer:0 ~seq:0 ~offset
    ~payload_len:payload_max

(* ------------------------------------------------------------------ *)
(* Producer control plane                                              *)
(* ------------------------------------------------------------------ *)

let backoff t attempt =
  let shift = min (attempt - 1) 16 in
  min (t.spec.retry_base_ns lsl shift) t.spec.retry_cap_ns

let send_produce t p =
  let node = Fabric.host t.fab p.p_host in
  Kernel.eth_user_send node.Fabric.kernel (produce_frame t p)

let rec arm_retry t p ~seq ~gen =
  let eng = Fabric.host_engine t.fab p.p_host in
  ignore
    (Engine.schedule eng ~delay:(backoff t p.p_attempt) (fun () ->
         if p.p_gen = gen && p.p_inflight = seq then begin
           p.p_attempt <- p.p_attempt + 1;
           p.p_max_attempt <- max p.p_max_attempt p.p_attempt;
           p.p_streak <- p.p_streak + 1;
           if p.p_streak >= t.spec.redirect_after then begin
             p.p_target <- 1 - p.p_target;
             p.p_streak <- 0
           end;
           p.p_redeliveries <- p.p_redeliveries + 1;
           if Trace.enabled () then
             Trace.emit
               (Trace.Mq_redelivery
                  { producer = p.p_idx; seq; attempt = p.p_attempt });
           send_produce t p;
           arm_retry t p ~seq ~gen
         end))

let rec kick t p =
  if p.p_inflight = 0 && p.p_pending > 0 then begin
    p.p_pending <- p.p_pending - 1;
    p.p_inflight <- p.p_next_seq;
    p.p_next_seq <- p.p_next_seq + 1;
    p.p_attempt <- 1;
    if p.p_last_ack_ts < 0 then
      p.p_last_ack_ts <- Engine.now (Fabric.host_engine t.fab p.p_host);
    send_produce t p;
    arm_retry t p ~seq:p.p_inflight ~gen:p.p_gen
  end

and on_ack t p ~seq ~offset =
  if p.p_inflight = seq && seq <> 0 then begin
    let now = Engine.now (Fabric.host_engine t.fab p.p_host) in
    if p.p_last_ack_ts >= 0 then
      p.p_max_gap_ns <- max p.p_max_gap_ns (now - p.p_last_ack_ts);
    p.p_last_ack_ts <- now;
    p.p_acked <- (seq, offset, now) :: p.p_acked;
    p.p_inflight <- 0;
    p.p_gen <- p.p_gen + 1;
    p.p_attempt <- 0;
    p.p_streak <- 0;
    kick t p
  end
(* else: a stale ack for an already-acked seq (duplicate in the fabric,
   or a late primary-path ack after failover) — ignored. *)

let bind_producer t p =
  let node = Fabric.host t.fab p.p_host in
  let k = node.Fabric.kernel in
  let mem = Machine.mem (Kernel.machine k) in
  let vc =
    Kernel.bind_eth_filter k (service_filter p.p_port) ~compiled:true
      Kernel.Deliver_user
  in
  Kernel.set_auto_repost k ~vc true;
  Kernel.set_user_handler k ~vc (fun ~addr ~len ->
      if len >= off_payload then begin
        let g o = Memory.load32 mem (addr + o) in
        if
          g off_magic = Handlers.mq_magic
          && g off_op = Handlers.mq_op_produce_ack
          && g off_producer = p.p_idx
        then on_ack t p ~seq:(g off_seq) ~offset:(g off_offset)
      end)

let produce t ~producer ~count ~at =
  if producer < 0 || producer >= Array.length t.prods then
    invalid_arg "Mq.produce: producer out of range";
  if count < 1 then invalid_arg "Mq.produce: count < 1";
  let p = t.prods.(producer) in
  p.p_scheduled <- p.p_scheduled + count;
  ignore
    (Engine.schedule_at
       (Fabric.host_engine t.fab p.p_host)
       ~at:(t.t0 + at)
       (fun () ->
         p.p_scheduled <- p.p_scheduled - count;
         p.p_pending <- p.p_pending + count;
         kick t p))

(* ------------------------------------------------------------------ *)
(* Consumer control plane                                              *)
(* ------------------------------------------------------------------ *)

let consumer_send t c ~op ~offset =
  let node = Fabric.host t.fab c.k_host in
  Kernel.eth_user_send node.Fabric.kernel (consumer_frame t c ~op ~offset);
  c.k_sent_at <- Engine.now (Fabric.host_engine t.fab c.k_host)

let consumer_tick t c =
  let now = Engine.now (Fabric.host_engine t.fab c.k_host) in
  match c.k_await with
  | A_none ->
    c.k_attempt <- 1;
    if c.k_head > c.k_cursor then begin
      c.k_await <- A_fetch c.k_cursor;
      consumer_send t c ~op:Handlers.mq_op_fetch ~offset:c.k_cursor
    end
    else begin
      c.k_await <- A_poll;
      consumer_send t c ~op:Handlers.mq_op_poll ~offset:0
    end
  | A_fetch o when now - c.k_sent_at >= t.spec.consumer_rto_ns ->
    c.k_attempt <- c.k_attempt + 1;
    c.k_refetches <- c.k_refetches + 1;
    consumer_send t c ~op:Handlers.mq_op_fetch ~offset:o
  | A_poll when now - c.k_sent_at >= t.spec.consumer_rto_ns ->
    c.k_attempt <- c.k_attempt + 1;
    c.k_refetches <- c.k_refetches + 1;
    consumer_send t c ~op:Handlers.mq_op_poll ~offset:0
  | A_fetch _ | A_poll -> ()

let bind_consumer t c =
  let node = Fabric.host t.fab c.k_host in
  let k = node.Fabric.kernel in
  let mem = Machine.mem (Kernel.machine k) in
  let vc =
    Kernel.bind_eth_filter k (service_filter c.k_port) ~compiled:true
      Kernel.Deliver_user
  in
  Kernel.set_auto_repost k ~vc true;
  Kernel.set_user_handler k ~vc (fun ~addr ~len ->
      if len >= off_payload then begin
        let g o = Memory.load32 mem (addr + o) in
        if g off_magic = Handlers.mq_magic then
          let op = g off_op in
          if op = Handlers.mq_op_fetch_resp then begin
            let o = g off_offset in
            c.k_head <- max c.k_head (o + 1);
            match c.k_await with
            | A_fetch e when e = o ->
              let producer = g off_producer and seq = g off_seq in
              let plen = g off_len in
              let ok = ref (plen = t.spec.payload_words * 4) in
              if !ok then
                for w = 0 to t.spec.payload_words - 1 do
                  if
                    g (off_payload + (4 * w))
                    <> payload_word ~producer ~seq ~w
                  then ok := false
                done;
              c.k_delivered <- (o, producer, seq, !ok) :: c.k_delivered;
              c.k_cursor <- o + 1;
              c.k_await <- A_none
            | _ -> ()
          end
          else if op = Handlers.mq_op_poll_resp then begin
            let head = g off_offset in
            c.k_head <- max c.k_head head;
            match c.k_await with
            | A_poll -> c.k_await <- A_none
            | A_fetch o when head <= o ->
              (* Our fetch raced ahead of the head: nothing to read
                 yet; go idle until the next tick. *)
              c.k_await <- A_none
            | _ -> ()
          end
      end)

let add_consumer t ~host ~start_at ~interval_ns ~until =
  if host < 2 || host >= Fabric.hosts t.fab then
    invalid_arg "Mq.add_consumer: host out of range";
  if interval_ns <= 0 then invalid_arg "Mq.add_consumer: interval";
  let c =
    {
      k_idx = List.length t.consumers;
      k_host = host;
      k_port = 21_000 + List.length t.consumers;
      k_cursor = 0;
      k_head = 0;
      k_await = A_none;
      k_sent_at = 0;
      k_attempt = 0;
      k_refetches = 0;
      k_delivered = [];
    }
  in
  bind_consumer t c;
  t.consumers <- t.consumers @ [ c ];
  let eng = Fabric.host_engine t.fab host in
  let rec tick at =
    ignore
      (Engine.schedule_at eng ~at:(t.t0 + at) (fun () ->
           consumer_tick t c;
           let next = at + interval_ns in
           if next <= until then tick next))
  in
  tick start_at;
  c.k_idx

(* ------------------------------------------------------------------ *)
(* Chaos: faults, crash/restart, partition                             *)
(* ------------------------------------------------------------------ *)

let set_host_fault t ~host plan =
  Ethernet.set_fault_plan (Fabric.host t.fab host).Fabric.eth
    (Option.map Fault.create plan)

let set_port_fault t ~host plan =
  Switch.set_fault_plan (Fabric.switch t.fab) ~port:host
    (Option.map Fault.create plan)

(* One plan per direction per host, each with its own seed so no two
   links share an RNG stream. *)
let install_chaos t ~config ~seed =
  for h = 0 to Fabric.hosts t.fab - 1 do
    set_host_fault t ~host:h
      (Some { config with Fault.seed = seed + (2 * h) });
    set_port_fault t ~host:h
      (Some { config with Fault.seed = seed + (2 * h) + 1 })
  done

let clear_chaos t =
  for h = 0 to Fabric.hosts t.fab - 1 do
    set_host_fault t ~host:h None;
    set_port_fault t ~host:h None
  done

let crash_broker t bi =
  let b = t.brokers.(bi) in
  let mem = broker_mem t bi in
  for i = 0 to 3 do
    b.b_base.(i) <-
      b.b_base.(i) + Memory.load32 mem (b.b_ctr.Memory.base + (4 * i))
  done;
  List.iter
    (fun (r : Memory.region) ->
      Memory.fill mem ~addr:r.Memory.base ~len:r.Memory.len '\000')
    [ b.b_meta; b.b_log; b.b_sess; b.b_ctr ];
  Kernel.reboot (Fabric.host t.fab b.b_host).Fabric.kernel;
  b.b_down <- true

let heal_broker t bi =
  install_broker t bi;
  t.brokers.(bi).b_down <- false

(* Kernel crash with scheduled heal: ASH state and DSM segments are
   wiped at [down_at] (arrivals drop at the demux boundary while
   down), and the broker reinstalls cold at [heal_at]. Both actions
   run on the broker's own engine so the schedule is deterministic at
   any [--jobs]. *)
let schedule_crash t ~broker (o : Fault.outage) =
  let eng = Fabric.host_engine t.fab t.brokers.(broker).b_host in
  ignore
    (Engine.schedule_at eng ~at:(t.t0 + o.Fault.down_at) (fun () ->
         crash_broker t broker));
  ignore
    (Engine.schedule_at eng ~at:(t.t0 + o.Fault.heal_at) (fun () ->
         heal_broker t broker))

(* Network partition of one broker: total loss in both directions for
   the outage window. The switch-side plan is installed from shard 0's
   engine (which owns the switch), the host-side plan from the
   broker's engine. *)
let schedule_partition t ~broker ?(seed = 1) (o : Fault.outage) =
  let b = t.brokers.(broker) in
  let heng = Fabric.host_engine t.fab b.b_host in
  let seng = Fabric.engine t.fab in
  ignore
    (Engine.schedule_at heng ~at:(t.t0 + o.Fault.down_at) (fun () ->
         set_host_fault t ~host:b.b_host (Some (Fault.partition ~seed ()))));
  ignore
    (Engine.schedule_at heng ~at:(t.t0 + o.Fault.heal_at) (fun () ->
         set_host_fault t ~host:b.b_host None));
  ignore
    (Engine.schedule_at seng ~at:(t.t0 + o.Fault.down_at) (fun () ->
         set_port_fault t ~host:b.b_host
           (Some (Fault.partition ~seed:(seed + 1) ()))));
  ignore
    (Engine.schedule_at seng ~at:(t.t0 + o.Fault.heal_at) (fun () ->
         set_port_fault t ~host:b.b_host None))

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let total_redeliveries t =
  Array.fold_left (fun a p -> a + p.p_redeliveries) 0 t.prods
  + List.fold_left (fun a c -> a + c.k_refetches) 0 t.consumers

(* Broker housekeeping: diff the handler-maintained drop counters
   against what has already been emitted and surface the difference as
   [drops.mq.*] trace events, so the unified drop namespace carries
   exactly the machine counters. *)
let housekeeping_tick t bi =
  let b = t.brokers.(bi) in
  if not b.b_down then begin
    let emit off reason =
      let total = ctr_total t bi off in
      let d = total - b.b_seen.(off / 4) in
      b.b_seen.(off / 4) <- total;
      if d > 0 && Trace.enabled () then
        for _ = 1 to d do
          Trace.emit (Trace.Pkt_drop { nic = "mq"; reason })
        done
    in
    emit Handlers.mq_ctr_dup Trace.Dup_seq;
    emit Handlers.mq_ctr_stale Trace.Stale_seq;
    emit Handlers.mq_ctr_gap Trace.Repl_gap
  end

let start_housekeeping t bi =
  let eng = Fabric.host_engine t.fab t.brokers.(bi).b_host in
  let rec tick at =
    ignore
      (Engine.schedule_at eng ~at (fun () ->
           housekeeping_tick t bi;
           let next = at + t.spec.housekeep_ns in
           if next <= t.t0 + t.spec.horizon_ns then tick next))
  in
  tick (Engine.now eng + t.spec.housekeep_ns)

let register_timeseries t =
  match Timeseries.current () with
  | None -> ()
  | Some ts ->
    let appends bi = ctr_total t bi Handlers.mq_ctr_appends in
    let dups bi = ctr_total t bi Handlers.mq_ctr_dup in
    Timeseries.register_rate ts "mq.appends" (fun () ->
        appends 0 + appends 1);
    Timeseries.register_rate ts "mq.dedup_hits" (fun () -> dups 0 + dups 1);
    Timeseries.register_rate ts "mq.redeliveries" (fun () ->
        total_redeliveries t);
    Timeseries.register_gauge ts "mq.repl_lag" (fun () ->
        float_of_int (log_count t 0 - log_count t 1));
    Timeseries.register_gauge ts "mq.log_depth" (fun () ->
        float_of_int (log_count t 1))

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create fab spec =
  if spec.producers < 1 then invalid_arg "Mq.create: producers < 1";
  if Fabric.hosts fab < 2 + spec.producers then
    invalid_arg "Mq.create: need 2 broker hosts + one host per producer";
  if spec.capacity < 1 then invalid_arg "Mq.create: capacity < 1";
  if spec.payload_words < 1 || spec.payload_words * 4 > payload_max then
    invalid_arg "Mq.create: payload_words outside the slot";
  if spec.retry_base_ns <= 0 || spec.retry_cap_ns < spec.retry_base_ns then
    invalid_arg "Mq.create: retry window";
  (* Resolve every client↔broker pair up front; the data plane never
     issues ARP traffic, so resolution survives broker reboots (the
     caches live user-side). *)
  Fabric.warm_arp fab ~server:0;
  Fabric.warm_arp fab ~server:1;
  let t0 = Fabric.now fab in
  let mk_broker host =
    let node = Fabric.host fab host in
    {
      b_host = host;
      b_meta = Fabric.alloc node ~name:"mq-meta" 16;
      b_log = Fabric.alloc node ~name:"mq-log" (spec.capacity * slot_stride);
      b_sess = Fabric.alloc node ~name:"mq-sess" (spec.producers * 8);
      b_ctr = Fabric.alloc node ~name:"mq-ctr" Handlers.mq_ctr_len;
      b_base = Array.make 4 0;
      b_seen = Array.make 4 0;
      b_down = false;
    }
  in
  let t =
    {
      fab;
      spec;
      t0;
      brokers = [| mk_broker 0; mk_broker 1 |];
      prods =
        Array.init spec.producers (fun i ->
            {
              p_idx = i;
              p_host = 2 + i;
              p_port = 20_000 + i;
              p_target = 0;
              p_next_seq = 1;
              p_pending = 0;
              p_scheduled = 0;
              p_inflight = 0;
              p_attempt = 0;
              p_streak = 0;
              p_gen = 0;
              p_acked = [];
              p_redeliveries = 0;
              p_max_attempt = 0;
              p_last_ack_ts = -1;
              p_max_gap_ns = 0;
            });
      consumers = [];
    }
  in
  install_broker t 0;
  install_broker t 1;
  Array.iter (fun p -> bind_producer t p) t.prods;
  register_timeseries t;
  start_housekeeping t 0;
  start_housekeeping t 1;
  t

(* ------------------------------------------------------------------ *)
(* Drain, stats, audit                                                 *)
(* ------------------------------------------------------------------ *)

let idle t =
  Array.for_all
    (fun p -> p.p_inflight = 0 && p.p_pending = 0 && p.p_scheduled = 0)
    t.prods

let drain t ~deadline =
  let deadline = t.t0 + deadline in
  let step = 5_000_000 in
  let rec loop () =
    if idle t then true
    else begin
      let now = Fabric.now t.fab in
      if now >= deadline then false
      else begin
        Fabric.run_until t.fab (min deadline (now + step));
        loop ()
      end
    end
  in
  loop ()

type stats = {
  s_produced : int;
  s_acked : int;
  s_redeliveries : int;
  s_refetches : int;
  s_delivered : int;
  s_appends : int * int;
  s_dedup : int * int;
  s_stale : int * int;
  s_gap : int * int;
  s_log : int * int;
  s_max_attempt : int;
  s_blackout_ns : int;
}

let stats t =
  let pair f = (f 0, f 1) in
  {
    s_produced =
      Array.fold_left (fun a p -> a + (p.p_next_seq - 1)) 0 t.prods;
    s_acked = Array.fold_left (fun a p -> a + List.length p.p_acked) 0 t.prods;
    s_redeliveries =
      Array.fold_left (fun a p -> a + p.p_redeliveries) 0 t.prods;
    s_refetches = List.fold_left (fun a c -> a + c.k_refetches) 0 t.consumers;
    s_delivered =
      List.fold_left (fun a c -> a + List.length c.k_delivered) 0 t.consumers;
    s_appends = pair (fun bi -> ctr_total t bi Handlers.mq_ctr_appends);
    s_dedup = pair (fun bi -> ctr_total t bi Handlers.mq_ctr_dup);
    s_stale = pair (fun bi -> ctr_total t bi Handlers.mq_ctr_stale);
    s_gap = pair (fun bi -> ctr_total t bi Handlers.mq_ctr_gap);
    s_log = pair (log_count t);
    s_max_attempt =
      Array.fold_left (fun a p -> max a p.p_max_attempt) 0 t.prods;
    s_blackout_ns =
      Array.fold_left (fun a p -> max a p.p_max_gap_ns) 0 t.prods;
  }

type audit = {
  a_ok : bool;
  a_errors : string list;  (* first few failures, human-readable *)
  a_log_len : int;
  a_acked : int;
  a_delivered : int;
}

(* Replay the authoritative (replica) log and check the delivery
   contract end to end: every acknowledged (producer, seq) appears
   exactly once, at the acknowledged offset, with intact payload;
   per-producer sequences are strictly increasing in offset order; and
   everything consumers recorded matches the log. With
   [check_prefix_equal] (clean runs only) the primary log must be
   identical — chained replication kept the copies in lockstep. *)
let audit ?(check_prefix_equal = false) t =
  let errors = ref [] in
  let nerr = ref 0 in
  let err fmt =
    Printf.ksprintf
      (fun s ->
        incr nerr;
        if !nerr <= 12 then errors := s :: !errors)
      fmt
  in
  let mem = broker_mem t 1 in
  let b = t.brokers.(1) in
  let count = log_count t 1 in
  if count < 0 || count > t.spec.capacity then
    err "replica log count %d outside [0, %d]" count t.spec.capacity;
  let count = max 0 (min count t.spec.capacity) in
  let slot o = b.b_log.Memory.base + (o * slot_stride) in
  let seen = Hashtbl.create 256 in
  let last = Array.make t.spec.producers 0 in
  for o = 0 to count - 1 do
    let p = Memory.load32 mem (slot o) in
    let s = Memory.load32 mem (slot o + 4) in
    let len = Memory.load32 mem (slot o + 8) in
    if p < 0 || p >= t.spec.producers then
      err "offset %d: producer %d out of range" o p
    else begin
      if Hashtbl.mem seen (p, s) then
        err "offset %d: duplicate append of (%d, %d)" o p s
      else Hashtbl.add seen (p, s) o;
      if s <= last.(p) then
        err "offset %d: producer %d seq %d not above %d (offset order)" o p s
          last.(p)
      else last.(p) <- s;
      if len <> t.spec.payload_words * 4 then
        err "offset %d: payload length %d" o len
      else
        for w = 0 to t.spec.payload_words - 1 do
          if
            Memory.load32 mem (slot o + 16 + (4 * w))
            <> payload_word ~producer:p ~seq:s ~w
          then err "offset %d: payload word %d corrupt" o w
        done
    end
  done;
  let acked = ref 0 in
  Array.iter
    (fun p ->
      if p.p_inflight <> 0 || p.p_pending <> 0 then
        err "producer %d not drained (inflight %d, pending %d)" p.p_idx
          p.p_inflight p.p_pending;
      if p.p_max_attempt > t.spec.max_attempts then
        err "producer %d needed %d attempts (bound %d)" p.p_idx p.p_max_attempt
          t.spec.max_attempts;
      let prev_off = ref (-1) in
      List.iter
        (fun (seq, off, _ts) ->
          incr acked;
          (match Hashtbl.find_opt seen (p.p_idx, seq) with
          | Some o when o = off -> ()
          | Some o ->
            err "acked (%d, %d) at offset %d but logged at %d" p.p_idx seq off
              o
          | None -> err "acked (%d, %d) missing from the log" p.p_idx seq);
          if off <= !prev_off then
            err "producer %d: ack offsets not increasing at seq %d" p.p_idx seq;
          prev_off := off)
        (List.rev p.p_acked))
    t.prods;
  let delivered = ref 0 in
  List.iter
    (fun c ->
      List.iter
        (fun (off, p, s, payload_ok) ->
          incr delivered;
          if not payload_ok then
            err "consumer %d: corrupt payload at offset %d" c.k_idx off;
          match Hashtbl.find_opt seen (p, s) with
          | Some o when o = off -> ()
          | _ -> err "consumer %d: offset %d (%d, %d) not in the log" c.k_idx off p s)
        c.k_delivered)
    t.consumers;
  if check_prefix_equal then begin
    let pcount = log_count t 0 in
    if pcount <> count then
      err "primary log %d entries, replica %d (clean run)" pcount count;
    let pmem = broker_mem t 0 in
    let pb = t.brokers.(0) in
    for o = 0 to min pcount count - 1 do
      for w = 0 to (slot_stride / 4) - 1 do
        if
          Memory.load32 pmem (pb.b_log.Memory.base + (o * slot_stride) + (4 * w))
          <> Memory.load32 mem (slot o + (4 * w))
        then err "logs differ at offset %d word %d" o w
      done
    done
  end;
  {
    a_ok = !nerr = 0;
    a_errors = List.rev !errors;
    a_log_len = count;
    a_acked = !acked;
    a_delivered = !delivered;
  }

let acked_offsets t ~producer =
  List.rev_map (fun (s, o, ts) -> (s, o, ts)) t.prods.(producer).p_acked

let delivered t ~consumer =
  let c = List.nth t.consumers consumer in
  List.rev_map (fun (o, p, s, ok) -> (o, p, s, ok)) c.k_delivered
