(** Connection-churn scale experiment over the many-host {!Fabric}
    (`ashbench exp_scale`, the "exp_scale" bench table).

    Drives up to thousands of concurrent TCP echo connections through
    one server host of a switched fabric — staggered connects, a
    concurrent data phase, then close/teardown churn — and measures
    goodput, echo round-trip percentiles, per-connection fairness and
    resource reclamation. A second section measures worst-case demux
    cost through the merged DPF trie at 64 vs 4096 installed filters
    (the flatness claim behind scaling the demux point count). *)

type churn_spec = {
  connections : int;
  client_hosts : int;   (** Connections round-robin over this many hosts. *)
  rounds : int;         (** Request/response cycles per connection. *)
  payload : int;        (** Bytes per request (echoed back verbatim). *)
  queue_limit : int;    (** Switch egress queue bound. *)
  connect_stagger_ns : int;
  data_stagger_ns : int;
  verify : bool;        (** Byte-verify every echoed payload. *)
  deadline_ns : int;    (** Virtual-time cap on the whole run. *)
  shards : int;
      (** Fabric shards: host [h] runs on shard [h mod shards], driver
          events included. Results are identical at any shard count. *)
  jobs : int;           (** Worker domains executing the shards. *)
}

val default_spec : churn_spec
(** 64 connections over 8 client hosts, 4 rounds of 256-byte echoes,
    16-deep switch queues, 100 us connect / 250 us data stagger, no
    byte verification, 60 virtual-second deadline. [shards]/[jobs]
    default from the [ASH_SHARDS]/[ASH_JOBS] environment variables
    (else 1/1), so the whole scale suite can be re-run sharded without
    touching any test. *)

type churn_result = {
  completed : int;
      (** Connections that finished every round and closed both sides. *)
  stragglers : int;
      (** Endpoints force-torn-down at the deadline (0 on a clean run). *)
  echoed_bytes : int;    (** Application bytes echoed back to clients. *)
  makespan_ns : int;     (** Data-phase span: barrier to last close. *)
  goodput_mbs : float;   (** [echoed_bytes] over the data-phase span. *)
  rtt_p50_us : float;    (** Echo round trip, median. *)
  rtt_p99_us : float;    (** Echo round trip, 99th percentile. *)
  fairness_ratio : float;
      (** Max/min per-connection mean round trip, over connections that
          completed all rounds. 1.0 is perfectly fair. *)
  verify_failures : int; (** Byte mismatches (when [verify] is set). *)
  leaked_bindings : int; (** Kernel bindings above baseline, all hosts. *)
  leaked_filters : int;  (** Trie filters above baseline, all hosts. *)
  leaked_regions : int;  (** Memory regions above baseline, all hosts. *)
  demux_maint_units : int;
      (** The server kernel's demux-maintenance work counter — the
          churn hot path's cycle-budget guard (see
          {!Ash_kern.Kernel.demux_maintenance_units}). *)
  switch_drops : int;    (** Egress tail drops across all switch ports. *)
  retransmits : int;     (** TCP segments resent, both directions. *)
}

val run_churn : ?configure:(Fabric.t -> unit) -> churn_spec -> churn_result
(** One full churn run on a fresh fabric ([client_hosts + 1] hosts,
    server at host 0). Deterministic: same spec, same result.
    [configure] runs on the warmed fabric before any connection opens —
    the chaos suite uses it to install switch-port fault plans. *)

val conn_grid : int list
(** The connection-count grid of the bench table: 16, 64, 256, 1024. *)

val scale : unit -> Report.table
(** The goodput/latency-vs-connections and demux-flatness table
    recorded into BENCH_results.json. *)
