type row = {
  label : string;
  paper : float option;
  measured : float;
  unit_ : string;
}

type table = {
  id : string;
  title : string;
  rows : row list;
  notes : string list;
}

let row ~label ?paper ~measured ~unit_ () = { label; paper; measured; unit_ }

let deviation r =
  match r.paper with
  | Some p when p <> 0. -> Some (r.measured /. p)
  | Some _ | None -> None

let fmt_value v =
  if Float.is_nan v then "-"
  else if Float.abs v >= 100. then Printf.sprintf "%.0f" v
  else if Float.abs v >= 10. then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

let print ppf t =
  let label_w =
    List.fold_left (fun w r -> max w (String.length r.label)) 24 t.rows
  in
  Format.fprintf ppf "@.=== %s: %s ===@." t.id t.title;
  Format.fprintf ppf "  %-*s %12s %12s %8s  %s@." label_w "configuration"
    "paper" "measured" "ratio" "unit";
  List.iter
    (fun r ->
       let paper = match r.paper with Some p -> fmt_value p | None -> "-" in
       let ratio =
         match deviation r with
         | Some d -> Printf.sprintf "%.2fx" d
         | None -> "-"
       in
       Format.fprintf ppf "  %-*s %12s %12s %8s  %s@." label_w r.label paper
         (fmt_value r.measured) ratio r.unit_)
    t.rows;
  List.iter (fun n -> Format.fprintf ppf "  note: %s@." n) t.notes

let to_markdown t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "### %s — %s\n\n" t.id t.title);
  Buffer.add_string buf "| configuration | paper | measured | ratio | unit |\n";
  Buffer.add_string buf "|---|---|---|---|---|\n";
  List.iter
    (fun r ->
       let paper = match r.paper with Some p -> fmt_value p | None -> "-" in
       let ratio =
         match deviation r with
         | Some d -> Printf.sprintf "%.2fx" d
         | None -> "-"
       in
       Buffer.add_string buf
         (Printf.sprintf "| %s | %s | %s | %s | %s |\n" r.label paper
            (fmt_value r.measured) ratio r.unit_))
    t.rows;
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "\n_Note: %s_\n" n))
    t.notes;
  Buffer.contents buf

let print_trace ?max_events ppf recorder =
  Ash_obs.Dump.pp_recorder ?max_events ppf recorder

let trace_to_json recorder = Ash_obs.Dump.to_json recorder
