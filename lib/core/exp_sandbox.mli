(** §V-D: sandboxing overhead on the DSM remote write. *)

type variant = Generic | Specific | Guarded

val run_once :
  ?absint:bool ->
  ?specialize_exit:bool ->
  variant:variant ->
  sandboxed:bool ->
  payload_len:int ->
  unit ->
  Ash_vm.Interp.result
(** Execute one remote write in isolation (no communication costs).
    [absint] (default false) lets the sandboxer elide statically proven
    checks; [specialize_exit] drops the general exit code. *)

val sandbox_stats :
  ?absint:bool ->
  ?specialize_exit:bool ->
  variant:variant ->
  unit ->
  Ash_vm.Sandbox.stats
(** Static sandboxing cost of the remote-write handler under the given
    analysis configuration. *)

val overhead_ratio : variant:variant -> payload_len:int -> float
(** Sandboxed/unsafe cycle ratio. *)

val section_vd : unit -> Report.table
