(* Cross-core DSM over the multi-queue server: the §V atomicity story
   applied across kernel shards.

   Every exported segment has exactly one owner core ([seg mod cores]),
   and only that core's kernel ever touches the segment's memory — the
   paper's handler-atomicity argument (one handler runs to completion
   per core) then makes every DSM op atomic without locks. Requests are
   UDP frames steered by the RSS flow hash, so a request can land on a
   core that does {e not} own its target segment. That core's handler
   is the stock generic remote write whose translation table maps only
   the segments the core owns; a non-owned segment reads [base=0,
   limit=0], fails the bounds check, and takes the voluntary-abort
   path. The user-level fallback then forwards the op to the owner
   shard as a cluster message (one epoch of virtual latency — the
   cross-core handoff), and the owner applies it. Ownership is thus
   enforced twice: structurally (segments live in the owner's machine)
   and dynamically (foreign ops abort and are re-routed). *)

module Engine = Ash_sim.Engine
module Machine = Ash_sim.Machine
module Memory = Ash_sim.Memory
module Time = Ash_sim.Time
module Kernel = Ash_kern.Kernel
module Dpf = Ash_kern.Dpf
module Rss = Ash_nic.Rss
module Packet = Ash_proto.Packet
module Bytesx = Ash_util.Bytesx

let net_header = Packet.ip_header_len + Packet.udp_header_len (* 28 *)
let req_header = 12 (* seg | off | size *)

type t = {
  fab : Fabric.t;
  port : int;
  segments : int;
  seg_size : int;
  cores : Fabric.core array;
  segs : Memory.region array; (* seg i lives in its owner core's machine *)
  forwarded : int array; (* per core: foreign ops it re-routed away *)
  applied : int array; (* per owner core: forwarded ops applied here *)
  base_commits : int array; (* ash_committed at create time, per core *)
}

let ncores t = Array.length t.cores
let owner t ~seg = seg mod ncores t

(* The per-core view of host 0: the RSS cores when the fabric has them,
   else plain host 0 as a single "core 0". *)
let host0_cores fab =
  let cs = Fabric.cores fab in
  if Array.length cs > 0 then cs
  else begin
    let n = Fabric.host fab 0 in
    [|
      {
        Fabric.core_idx = 0;
        core_shard = 0;
        core_kernel = n.Fabric.kernel;
        core_eth = n.Fabric.eth;
      };
    |]
  end

let create ?(port = 9_000) ~segments ~segment_size fab =
  if segments < 1 then invalid_arg "Dsm_mc.create: segments";
  if segment_size < 4 then invalid_arg "Dsm_mc.create: segment_size";
  let cores = host0_cores fab in
  let n = Array.length cores in
  let segs =
    Array.init segments (fun i ->
        let c = cores.(i mod n) in
        Memory.alloc
          (Machine.mem (Kernel.machine c.Fabric.core_kernel))
          ~name:(Printf.sprintf "dsm-mc-seg-%d" i)
          segment_size)
  in
  let t =
    {
      fab;
      port;
      segments;
      seg_size = segment_size;
      cores;
      segs;
      forwarded = Array.make n 0;
      applied = Array.make n 0;
      base_commits = Array.make n 0;
    }
  in
  let cluster = Fabric.cluster fab in
  let epoch = Engine.Cluster.epoch_ns cluster in
  Array.iteri
    (fun c (core : Fabric.core) ->
      let k = core.Fabric.core_kernel in
      let mem = Machine.mem (Kernel.machine k) in
      (* Translation table over ALL segments, but only the owned ones
         are mapped; the rest stay zeroed, so foreign ops fail the
         handler's bounds check and fall back to the forwarder. *)
      let table = Memory.alloc mem ~name:"dsm-mc-table" (8 * segments) in
      for i = 0 to segments - 1 do
        if i mod n = c then begin
          Memory.store32 mem
            (table.Memory.base + (8 * i))
            t.segs.(i).Memory.base;
          Memory.store32 mem
            (table.Memory.base + (8 * i) + 4)
            t.segs.(i).Memory.len
        end
      done;
      let prog =
        Handlers.remote_write_generic ~msg_off:net_header
          ~table_addr:table.Memory.base ~entries:segments ()
      in
      let delivery =
        match Kernel.download_ash k ~sandbox:true prog with
        | Ok id -> Kernel.Deliver_ash id
        | Error e ->
          failwith
            (Format.asprintf "Dsm_mc.create: %a" Ash_vm.Verify.pp_error e)
      in
      let vc =
        Kernel.bind_eth_filter k
          [
            Dpf.atom ~offset:9 ~width:1 Packet.Ip.proto_udp;
            Dpf.atom
              ~offset:(Packet.ip_header_len + 2)
              ~width:2 port;
          ]
          ~compiled:true delivery
      in
      Kernel.set_auto_repost k ~vc true;
      t.base_commits.(c) <- (Kernel.stats k).Kernel.ash_committed;
      (* Foreign-segment fallback: re-route the op to the owner shard
         as a cluster message landing one epoch out (always beyond the
         current merge barrier). *)
      Kernel.set_user_handler k ~vc (fun ~addr ~len ->
          if len >= net_header + req_header then begin
            let seg = Memory.load32 mem (addr + net_header) in
            let off = Memory.load32 mem (addr + net_header + 4) in
            let size = Memory.load32 mem (addr + net_header + 8) in
            if
              seg >= 0
              && seg < segments
              && size >= 0
              && off >= 0
              && off + size <= segment_size
              && len >= net_header + req_header + size
            then begin
              let data = Bytes.create size in
              Memory.blit_to_bytes mem
                ~src:(addr + net_header + req_header)
                ~dst:data ~dst_off:0 ~len:size;
              let o = seg mod n in
              t.forwarded.(c) <- t.forwarded.(c) + 1;
              let at = Engine.now (Kernel.engine k) + epoch in
              Engine.Cluster.post cluster ~dst:t.cores.(o).Fabric.core_shard
                ~at (fun () ->
                  let omem =
                    Machine.mem (Kernel.machine t.cores.(o).Fabric.core_kernel)
                  in
                  Memory.blit_from_bytes omem ~src:data ~src_off:0
                    ~dst:(t.segs.(seg).Memory.base + off)
                    ~len:size;
                  t.applied.(o) <- t.applied.(o) + 1)
            end
          end))
    cores;
  (* Telemetry: cross-core DSM progress — in-kernel commits across all
     owner cores, plus the forward/apply split of foreign-segment
     writes. *)
  (match Ash_obs.Timeseries.current () with
   | None -> ()
   | Some ts ->
     Ash_obs.Timeseries.register_rate ts "dsm.commits" (fun () ->
         (* committed_in_kernel, inlined (defined below create) *)
         let sum = ref 0 in
         Array.iteri
           (fun c (core : Fabric.core) ->
             sum :=
               !sum
               + (Kernel.stats core.Fabric.core_kernel).Kernel.ash_committed
               - t.base_commits.(c))
           t.cores;
         !sum);
     Ash_obs.Timeseries.register_rate ts "dsm.forwards" (fun () ->
         Array.fold_left ( + ) 0 t.forwarded);
     Ash_obs.Timeseries.register_rate ts "dsm.applied_forwards" (fun () ->
         Array.fold_left ( + ) 0 t.applied));
  t

let ring_of t ~client ~sport =
  Rss.hash_tuple
    {
      Rss.src_addr = (Fabric.host t.fab client).Fabric.ip;
      dst_addr = (Fabric.host t.fab 0).Fabric.ip;
      proto = Packet.Ip.proto_udp;
      src_port = sport;
      dst_port = t.port;
    }
  mod ncores t

(* Trusted-client validation, as in {!Dsm}: a request the handler would
   reject produces no effect at all, so clients check geometry first. *)
let write_at t ~client ~sport ~at ~seg ~off ~data =
  let size = Bytes.length data in
  if client < 1 || client >= Fabric.hosts t.fab then
    invalid_arg "Dsm_mc.write_at: client";
  if seg < 0 || seg >= t.segments then invalid_arg "Dsm_mc.write_at: seg";
  if size < 4 || size mod 4 <> 0 || size > 4096 then
    invalid_arg "Dsm_mc.write_at: size must be word-aligned, in [4, 4096]";
  if off < 0 || off + size > t.seg_size then
    invalid_arg "Dsm_mc.write_at: out of bounds";
  let total = net_header + req_header + size in
  let frame = Bytes.create total in
  Packet.Ip.write frame ~off:0
    {
      Packet.Ip.src = (Fabric.host t.fab client).Fabric.ip;
      dst = (Fabric.host t.fab 0).Fabric.ip;
      proto = Packet.Ip.proto_udp;
      total_len = total;
      ttl = 64;
      id = seg + 1;
    };
  Packet.Udp.write frame ~off:Packet.ip_header_len
    {
      Packet.Udp.src_port = sport;
      dst_port = t.port;
      length = Packet.udp_header_len + req_header + size;
      checksum = 0;
    };
  Bytesx.set_u32 frame net_header seg;
  Bytesx.set_u32 frame (net_header + 4) off;
  Bytesx.set_u32 frame (net_header + 8) size;
  Bytes.blit data 0 frame (net_header + req_header) size;
  let kernel = (Fabric.host t.fab client).Fabric.kernel in
  ignore
    (Engine.schedule_at
       (Fabric.host_engine t.fab client)
       ~at
       (fun () -> Kernel.eth_kernel_send kernel frame))

let committed_in_kernel t =
  let sum = ref 0 in
  Array.iteri
    (fun c (core : Fabric.core) ->
      sum :=
        !sum
        + (Kernel.stats core.Fabric.core_kernel).Kernel.ash_committed
        - t.base_commits.(c))
    t.cores;
  !sum

let forwards t = Array.fold_left ( + ) 0 t.forwarded
let applied_forwards t = Array.fold_left ( + ) 0 t.applied

let read_seg t ~seg ~off ~len =
  let core = t.cores.(owner t ~seg) in
  let mem = Machine.mem (Kernel.machine core.Fabric.core_kernel) in
  let b = Bytes.create len in
  Memory.blit_to_bytes mem
    ~src:(t.segs.(seg).Memory.base + off)
    ~dst:b ~dst_off:0 ~len;
  b
