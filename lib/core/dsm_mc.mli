(** Cross-core DSM on the multi-queue server: per-segment ownership
    plus message-passing forwards.

    The sharded counterpart of {!Dsm}. Every segment is owned by
    exactly one of host 0's RSS cores ([seg mod cores]); only the
    owner's kernel ever touches the segment, so the paper's §V
    atomicity argument (one handler at a time per core) holds per core
    with no locks. A request the flow hash lands on the wrong core
    aborts out of that core's handler (its translation table maps only
    owned segments) and is forwarded to the owner's shard as a cluster
    message carrying one epoch of virtual latency.

    Requests are one-way UDP remote writes:
    [IP(20) | UDP(8) | seg(4) | off(4) | size(4) | data], served
    in-kernel by {!Handlers.remote_write_generic} with [msg_off = 28].
    Completion is observed through the segment contents and the
    commit/forward counters — there are no replies. *)

type t

val create : ?port:int -> segments:int -> segment_size:int -> Fabric.t -> t
(** Export [segments] segments of [segment_size] bytes spread over
    host 0's cores of [fab] (round-robin: segment [i] belongs to core
    [i mod cores]); on a single-queue fabric everything lands on host
    0's one kernel. Downloads the (sandboxed) write handler and binds
    it to UDP [port] (default 9000) on every core. *)

val ncores : t -> int
val owner : t -> seg:int -> int

val ring_of : t -> client:int -> sport:int -> int
(** The core whose ring the RSS hash picks for this client flow — where
    the request will be demuxed, which need not be [owner seg]. *)

val write_at :
  t ->
  client:int ->
  sport:int ->
  at:Ash_sim.Time.ns ->
  seg:int ->
  off:int ->
  data:Bytes.t ->
  unit
(** Schedule a remote write from [client] (≥ 1) at virtual time [at]
    (on the client's own shard). [data] must be word-aligned, 4–4096
    bytes, in segment bounds — trusted-peer validation as in {!Dsm},
    since a rejected request has no effect and no reply. *)

val committed_in_kernel : t -> int
(** Writes the RSS target core owned and applied entirely in-kernel
    (sum of per-core handler commits since [create]). *)

val forwards : t -> int
(** Writes that landed on a non-owner core and were re-routed. *)

val applied_forwards : t -> int
(** Forwarded writes the owner cores have applied so far (equals
    {!forwards} once the fabric has quiesced). *)

val read_seg : t -> seg:int -> off:int -> len:int -> Bytes.t
(** Segment contents, straight from the owner core's memory. *)
