(* The message-queue robustness experiment: goodput of the replicated
   produce path versus link loss, and the recovery cost of a primary
   failover (the produce-blackout window), all on virtual time so the
   numbers are deterministic. Every cell ends with {!Mq.drain} and the
   delivery audit — the table's notes carry a machine-checkable
   PASSED/FAILED marker that CI greps. *)

module Fault = Ash_sim.Fault

let loss_grid = [ 0.0; 0.05; 0.2 ]

type mq_run = {
  loss : float;
  goodput_mps : float;  (* acked messages per virtual second *)
  acked : int;
  redeliveries : int;
  blackout_ns : int;  (* widest producer send-to-ack gap *)
  audit_ok : bool;
}

let msgs_per_producer = 60
let producers = 2

let spec = { Mq.default_spec with Mq.producers }

let mk ?(seed = 42) ?scenario () =
  let fab = Fabric.create ~hosts:(2 + producers) () in
  let q = Mq.create fab spec in
  (match scenario with None -> () | Some f -> f q);
  ignore seed;
  (fab, q)

(* Goodput over the span from the first enqueue to the last ack: the
   producers are stop-and-wait, so this measures the full produce →
   chain → replica-ack round trip under whatever the links do. *)
let measure ?seed ?scenario () =
  let _fab, q = mk ?seed ?scenario () in
  let start = 1_000_000 in
  for p = 0 to producers - 1 do
    Mq.produce q ~producer:p ~count:msgs_per_producer ~at:start
  done;
  let drained = Mq.drain q ~deadline:4_000_000_000 in
  let st = Mq.stats q in
  let a = Mq.audit q in
  let last_ack =
    let latest p =
      List.fold_left
        (fun acc (_, _, ts) -> max acc ts)
        0
        (Mq.acked_offsets q ~producer:p)
    in
    let rec go p acc = if p < 0 then acc else go (p - 1) (max acc (latest p)) in
    go (producers - 1) 0
  in
  let elapsed_ns = max 1 (last_ack - start) in
  {
    loss = 0.0;
    goodput_mps = float_of_int st.Mq.s_acked *. 1e9 /. float_of_int elapsed_ns;
    acked = st.Mq.s_acked;
    redeliveries = st.Mq.s_redeliveries;
    blackout_ns = st.Mq.s_blackout_ns;
    audit_ok = drained && a.Mq.a_ok && st.Mq.s_acked = producers * msgs_per_producer;
  }

let run_loss ?(seed = 42) rate =
  let scenario q =
    if rate > 0.0 then
      Mq.install_chaos q
        ~config:{ Fault.none with Fault.seed; drop = rate; jitter = 0.2 }
        ~seed
  in
  { (measure ~seed ~scenario ()) with loss = rate }

(* Primary crash mid-stream with a scheduled heal: clients redirect to
   the replica and replay; the blackout is how long the slowest
   producer went unacknowledged. *)
let run_failover ?(seed = 42) () =
  let scenario q =
    Mq.schedule_crash q ~broker:0
      (Fault.outage ~down_at:8_000_000 ~heal_at:60_000_000)
  in
  measure ~seed ~scenario ()

(* A small clean-link run for smoke tests and the Bechamel section:
   create, produce a handful, drain, audit. *)
let smoke () =
  let fab = Fabric.create ~hosts:4 () in
  let q = Mq.create fab { spec with Mq.capacity = 64 } in
  Mq.produce q ~producer:0 ~count:4 ~at:1_000_000;
  Mq.produce q ~producer:1 ~count:4 ~at:1_000_000;
  let drained = Mq.drain q ~deadline:500_000_000 in
  drained && (Mq.audit ~check_prefix_equal:true q).Mq.a_ok

let mq () =
  let losses = List.map (fun r -> run_loss r) loss_grid in
  let fo = run_failover () in
  let all_ok = List.for_all (fun r -> r.audit_ok) losses && fo.audit_ok in
  let loss_rows =
    List.concat_map
      (fun r ->
        [
          Report.row
            ~label:(Printf.sprintf "goodput | %.0f%% loss" (r.loss *. 100.))
            ~measured:(r.goodput_mps /. 1e3) ~unit_:"kmsg/s" ();
          Report.row
            ~label:(Printf.sprintf "redeliveries | %.0f%% loss" (r.loss *. 100.))
            ~measured:(float_of_int r.redeliveries) ~unit_:"msgs" ();
        ])
      losses
  in
  let fo_rows =
    [
      Report.row ~label:"failover | goodput"
        ~measured:(fo.goodput_mps /. 1e3) ~unit_:"kmsg/s" ();
      Report.row ~label:"failover | blackout"
        ~measured:(float_of_int fo.blackout_ns /. 1e6)
        ~unit_:"ms" ();
      Report.row ~label:"failover | redeliveries"
        ~measured:(float_of_int fo.redeliveries) ~unit_:"msgs" ();
    ]
  in
  {
    Report.id = "exp_mq";
    title =
      "Replicated message queue: goodput vs. loss, failover recovery \
       (in-kernel produce/replicate/fetch handlers)";
    rows = loss_rows @ fo_rows;
    notes =
      [
        Printf.sprintf
          "delivery audit %s: every acked message exactly once, in \
           per-producer order, on the surviving log"
          (if all_ok then "PASSED" else "FAILED");
        Printf.sprintf
          "%d producers x %d messages per cell; stop-and-wait clients, \
           %d ms primary outage in the failover cell"
          producers msgs_per_producer 52;
        "acks originate at the replica via in-handler chaining, so an \
         acked message is durable on both logs";
      ];
  }
