(** The many-host switched fabric: {!Testbed} generalized to N hosts.

    N simulated DECstations, each with its own kernel, Ethernet NIC and
    ARP endpoint, all wired to one store-and-forward {!Ash_nic.Switch}.
    Host [i] owns IP [10.0.0.(i+1)] and station address
    [02:00:00:00:xx:xx]. Transmit routing is per frame: IPv4
    destinations resolve through the sender's ARP cache, ARP replies
    unicast to the requester, everything unresolved broadcasts.

    With [shards > 1] the fabric runs on an {!Ash_sim.Engine.Cluster}:
    host [h] lives on shard [h mod shards] (the switch on shard 0), all
    cross-shard traffic rides the wires' fixed latency through the
    cluster's epoch barrier, and [jobs] worker domains execute the
    shards — with byte-identical results at any [jobs], including 1.

    With [server_cores > 1] host 0 becomes a multi-queue server: one
    kernel (its own handler cache, DPF trie, machine) and one RSS ring
    NIC per core behind a single switch port, with the {!Ash_nic.Rss}
    flow hash steering each arriving frame to the core that owns its
    flow. Core [c] lives on shard [c mod shards].

    The scale suite drives thousands of concurrent TCP connections with
    accept/teardown churn through one server host of this topology; see
    {!Exp_scale}. *)

type node = {
  idx : int;
  ip : int;
  mac : int;
  kernel : Ash_kern.Kernel.t;
  eth : Ash_nic.Ethernet.t;
  arp : Ash_proto.Arp.t;
}

type core = {
  core_idx : int;
  core_shard : int;
  core_kernel : Ash_kern.Kernel.t;
  core_eth : Ash_nic.Ethernet.t;
}

type t = {
  engine : Ash_sim.Engine.t;
      (** Shard 0's engine — the whole fabric when [shards = 1]. *)
  costs : Ash_sim.Costs.t;
  switch : Ash_nic.Switch.t;
  nodes : node array;
  cluster : Ash_sim.Engine.Cluster.t;
  jobs : int;
  cores : core array;
      (** Host 0's RSS cores; [[||]] unless [server_cores > 1] (then
          [cores.(0).core_kernel == (host t 0).kernel]). *)
}

val create :
  ?costs:Ash_sim.Costs.t ->
  ?queue_limit:int ->
  ?notify_queue_limit:int ->
  ?shards:int ->
  ?jobs:int ->
  ?epoch_ns:Ash_sim.Time.ns ->
  ?server_cores:int ->
  hosts:int ->
  unit ->
  t
(** [hosts ≥ 2] nodes on a [hosts]-port switch. [queue_limit] bounds
    each switch egress queue (default 16); [notify_queue_limit] is
    passed to every kernel. [shards] (default 1) splits the fabric
    across a cluster and [jobs] (default 1) sets how many domains
    execute it; results are independent of [jobs]. [epoch_ns] overrides
    the merge-barrier epoch (default [min 25_000 eth_hw_oneway_ns];
    must not exceed [eth_hw_oneway_ns], the fabric's minimum
    cross-shard latency). [server_cores] (default 1) gives host 0 that
    many RSS cores. *)

val hosts : t -> int
val host : t -> int -> node
val engine : t -> Ash_sim.Engine.t
val switch : t -> Ash_nic.Switch.t
val cluster : t -> Ash_sim.Engine.Cluster.t
val shards : t -> int
val jobs : t -> int

val shard_of_host : t -> int -> int
(** [h mod shards]. *)

val host_engine : t -> int -> Ash_sim.Engine.t
(** The engine of host [h]'s shard: schedule a host's driver events
    here, never on another shard's engine. *)

val cores : t -> core array

val now : t -> Ash_sim.Time.ns
(** Max over shard clocks. *)

val run : t -> unit
(** Run to quiescence through the cluster (all shards, [jobs] domains). *)

val run_until : t -> Ash_sim.Time.ns -> unit
val run_for : t -> Ash_sim.Time.ns -> unit
val now_us : t -> float

val alloc : node -> ?name:string -> int -> Ash_sim.Memory.region
val alloc_filled :
  node -> ?name:string -> seed:int -> int -> Ash_sim.Memory.region

val warm_arp : t -> server:int -> unit
(** Resolve the server's station address from every other host (one
    host per virtual millisecond, so request broadcasts don't overrun
    the finite egress queues) and run the fabric until done. The
    broadcast requests teach the server and the switch every client's
    address, so subsequent traffic is all-unicast. Raises [Failure] if
    any resolution fails. *)

val tcp_pair :
  t ->
  client:int ->
  server:int ->
  client_port:int ->
  server_port:int ->
  ?mss:int ->
  ?window:int ->
  ?checksum:bool ->
  ?rto:Ash_proto.Tcp.rto_policy ->
  unit ->
  Ash_proto.Tcp.t * Ash_proto.Tcp.t
(** Build a (client, server) endpoint pair over the fabric's Ethernet.
    Neither side is opened: callers [listen]/[connect]. Ports must be
    unique per live connection (Ethernet TCP filters demux on the port
    pair). Defaults: mss 1460 (one MTU), window 4096, no checksum,
    adaptive RTO. The server endpoint lives on [(host t server).kernel]
    — on a multi-queue server that is core 0, so TCP service stays
    single-core; the multicore experiments drive per-core ASHs
    instead. *)

val tcp_client :
  t ->
  client:int ->
  server:int ->
  client_port:int ->
  server_port:int ->
  ?mss:int ->
  ?window:int ->
  ?checksum:bool ->
  ?rto:Ash_proto.Tcp.rto_policy ->
  unit ->
  Ash_proto.Tcp.t

val tcp_server :
  t ->
  client:int ->
  server:int ->
  client_port:int ->
  server_port:int ->
  ?mss:int ->
  ?window:int ->
  ?checksum:bool ->
  ?rto:Ash_proto.Tcp.rto_policy ->
  unit ->
  Ash_proto.Tcp.t
(** The two halves of {!tcp_pair}, for callers that must create each
    endpoint on its own host's shard (endpoint creation installs the
    demux filter in that host's kernel): on a sharded fabric, build the
    side for host [h] from an event running on [host_engine t h]. *)

val udp_pair :
  t ->
  client:int ->
  server:int ->
  client_port:int ->
  server_port:int ->
  ?checksum:bool ->
  unit ->
  Ash_proto.Udp.t * Ash_proto.Udp.t

val ip_of_index : int -> int
val mac_of_index : int -> int
