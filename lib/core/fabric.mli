(** The many-host switched fabric: {!Testbed} generalized to N hosts.

    N simulated DECstations, each with its own kernel, Ethernet NIC and
    ARP endpoint, all wired to one store-and-forward {!Ash_nic.Switch}
    on one shared engine. Host [i] owns IP [10.0.0.(i+1)] and station
    address [02:00:00:00:xx:xx]. Transmit routing is per frame: IPv4
    destinations resolve through the sender's ARP cache, ARP replies
    unicast to the requester, everything unresolved broadcasts.

    The scale suite drives thousands of concurrent TCP connections with
    accept/teardown churn through one server host of this topology; see
    {!Exp_scale}. *)

type node = {
  idx : int;
  ip : int;
  mac : int;
  kernel : Ash_kern.Kernel.t;
  eth : Ash_nic.Ethernet.t;
  arp : Ash_proto.Arp.t;
}

type t = {
  engine : Ash_sim.Engine.t;
  costs : Ash_sim.Costs.t;
  switch : Ash_nic.Switch.t;
  nodes : node array;
}

val create :
  ?costs:Ash_sim.Costs.t ->
  ?queue_limit:int ->
  ?notify_queue_limit:int ->
  hosts:int ->
  unit ->
  t
(** [hosts ≥ 2] nodes on a [hosts]-port switch. [queue_limit] bounds
    each switch egress queue (default 16); [notify_queue_limit] is
    passed to every kernel. *)

val hosts : t -> int
val host : t -> int -> node
val engine : t -> Ash_sim.Engine.t
val switch : t -> Ash_nic.Switch.t

val run : t -> unit
val run_for : t -> Ash_sim.Time.ns -> unit
val now_us : t -> float

val alloc : node -> ?name:string -> int -> Ash_sim.Memory.region
val alloc_filled :
  node -> ?name:string -> seed:int -> int -> Ash_sim.Memory.region

val warm_arp : t -> server:int -> unit
(** Resolve the server's station address from every other host (one
    host per virtual millisecond, so request broadcasts don't overrun
    the finite egress queues) and run the engine until done. The
    broadcast requests teach the server and the switch every client's
    address, so subsequent traffic is all-unicast. Raises [Failure] if
    any resolution fails. *)

val tcp_pair :
  t ->
  client:int ->
  server:int ->
  client_port:int ->
  server_port:int ->
  ?mss:int ->
  ?window:int ->
  ?checksum:bool ->
  ?rto:Ash_proto.Tcp.rto_policy ->
  unit ->
  Ash_proto.Tcp.t * Ash_proto.Tcp.t
(** Build a (client, server) endpoint pair over the fabric's Ethernet.
    Neither side is opened: callers [listen]/[connect]. Ports must be
    unique per live connection (Ethernet TCP filters demux on the port
    pair). Defaults: mss 1460 (one MTU), window 4096, no checksum,
    adaptive RTO. *)

val udp_pair :
  t ->
  client:int ->
  server:int ->
  client_port:int ->
  server_port:int ->
  ?checksum:bool ->
  unit ->
  Ash_proto.Udp.t * Ash_proto.Udp.t

val ip_of_index : int -> int
val mac_of_index : int -> int
