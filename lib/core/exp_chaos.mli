(** Chaos experiment: TCP goodput under seeded loss, fixed vs adaptive
    retransmission (`ashbench chaos`, the "chaos" bench table). *)

val loss_rates : float list
(** The measured loss-rate grid: 0%, 1%, 5%, 20%. *)

type run = {
  rate : float;
  goodput_mbs : float;
  retransmits : int;
  fast_retransmits : int;
}

val transfer :
  ?seed:int ->
  ?total:int ->
  ?chunk:int ->
  rate:float ->
  rto:Ash_proto.Tcp.rto_policy ->
  fast_retransmit:bool ->
  unit ->
  run
(** One bulk transfer (default 256 KB in 8 KB writes) over a link
    dropping [rate] of the data-direction frames under [seed]. *)

val curves :
  ?seed:int -> ?total:int -> ?chunk:int -> unit ->
  (string * run list) list
(** Per-policy goodput curves over {!loss_rates} (the raw data behind
    {!chaos}; `ashbench chaos` prints these with retransmit counts). *)

val chaos : ?seed:int -> ?total:int -> ?chunk:int -> unit -> Report.table
(** The goodput-vs-loss table recorded into BENCH_results.json. *)
