(* Ablation A1: DPF compiled filters vs an interpreted filter engine.
   §IV-A: "DPF is an order of magnitude faster than the highest
   performance packet filter engines in the literature" — the mechanism
   being compilation with constant specialization. We measure demux cost
   per packet as installed filters grow. *)

module Machine = Ash_sim.Machine
module Memory = Ash_sim.Memory
module Costs = Ash_sim.Costs
module Dpf = Ash_kern.Dpf
module Bytesx = Ash_util.Bytesx

(* A UDP-port-style filter: IPv4 proto + destination port. *)
let filter_for_port port =
  [
    Dpf.atom ~offset:9 ~width:1 17;
    Dpf.atom ~offset:22 ~width:2 port;
  ]

let mk_packet ~port =
  let b = Bytes.make 64 '\000' in
  Bytesx.set_u8 b 9 17;
  Bytesx.set_u16 b 22 port;
  b

(* Demux one packet against n installed filters (worst case: match on
   the last), returning the cycles consumed. *)
let demux_cycles ~compiled ~nfilters =
  let m = Machine.create Costs.decstation in
  let mem = Machine.mem m in
  let pkt = mk_packet ~port:(7000 + nfilters - 1) in
  let buf = Memory.alloc mem ~name:"pkt" 64 in
  Memory.blit_from_bytes mem ~src:pkt ~src_off:0 ~dst:buf.Memory.base ~len:64;
  let filters = List.init nfilters (fun i -> filter_for_port (7000 + i)) in
  let programs =
    if compiled then List.map (fun f -> Some (Dpf.compile f)) filters
    else List.map (fun _ -> None) filters
  in
  ignore (Machine.take_ns m);
  let matched = ref false in
  List.iter2
    (fun f p ->
       if not !matched then
         matched :=
           (match p with
            | Some prog ->
              Dpf.run_compiled m prog ~msg_addr:buf.Memory.base ~msg_len:64
            | None ->
              Dpf.run_interpreted m f ~msg_addr:buf.Memory.base ~msg_len:64))
    filters programs;
  assert !matched;
  Machine.take_ns m

module Dpf_trie = Ash_kern.Dpf_trie

(* Same worst-case demux as [demux_cycles], but through the merged
   filter trie: the port filters share their protocol atom, so the walk
   tests the protocol once and dispatches on the port value — constant
   work in the number of installed filters. *)
let demux_cycles_trie ~nfilters =
  let m = Machine.create Costs.decstation in
  let mem = Machine.mem m in
  let pkt = mk_packet ~port:(7000 + nfilters - 1) in
  let buf = Memory.alloc mem ~name:"pkt" 64 in
  Memory.blit_from_bytes mem ~src:pkt ~src_off:0 ~dst:buf.Memory.base ~len:64;
  let trie = Dpf_trie.create () in
  List.iteri
    (fun i f -> Dpf_trie.insert trie ~prio:i f i)
    (List.init nfilters (fun i -> filter_for_port (7000 + i)));
  ignore (Machine.take_ns m);
  let r = Dpf_trie.lookup trie m ~msg_addr:buf.Memory.base ~msg_len:64 in
  assert (r = Some (nfilters - 1));
  Machine.take_ns m

let demux_scaling () =
  let rows =
    List.concat_map
      (fun n ->
         let lin = demux_cycles ~compiled:true ~nfilters:n in
         let trie = demux_cycles_trie ~nfilters:n in
         [
           Report.row
             ~label:(Printf.sprintf "%2d filters | linear scan, compiled" n)
             ~measured:(Ash_sim.Time.us_of_ns lin) ~unit_:"us/pkt" ();
           Report.row
             ~label:(Printf.sprintf "%2d filters | merged trie" n)
             ~measured:(Ash_sim.Time.us_of_ns trie) ~unit_:"us/pkt" ();
         ])
      [ 1; 4; 16; 64 ]
  in
  {
    Report.id = "ablation-demux";
    title =
      "Ablation A4: Ethernet demux scaling in installed filters — \
       per-filter linear scan vs one merged-trie walk";
    rows;
    notes =
      [
        "worst-case packet (matches the last installed filter); the \
         trie merges the shared protocol atom so its walk is constant \
         in the number of port filters, while the linear scan runs \
         every filter's program";
        "with one installed filter the two charge identical cycles: the \
         trie walk is priced as the same compiled filter code, merely \
         merged";
      ];
  }

let dpf () =
  let rows =
    List.concat_map
      (fun n ->
         let c = demux_cycles ~compiled:true ~nfilters:n in
         let i = demux_cycles ~compiled:false ~nfilters:n in
         [
           Report.row
             ~label:(Printf.sprintf "%2d filters | compiled (DPF)" n)
             ~measured:(Ash_sim.Time.us_of_ns c) ~unit_:"us/pkt" ();
           Report.row
             ~label:(Printf.sprintf "%2d filters | interpreted" n)
             ~measured:(Ash_sim.Time.us_of_ns i) ~unit_:"us/pkt" ();
         ])
      [ 1; 4; 16; 64 ]
  in
  {
    Report.id = "ablation-dpf";
    title = "Ablation A1: packet demultiplexing, compiled vs interpreted";
    rows;
    notes =
      [
        "worst-case demux (match on the last installed filter); DPF's \
         claim is roughly an order of magnitude over interpreted engines";
      ];
  }

(* Ablation A3: interface-specific DILP back ends (sec III-C). For a
   striped Ethernet receive buffer, compare de-striping with the trusted
   copy engine and then running a contiguous DILP checksum pass (two
   traversals) against the striped DILP back end doing everything in one
   pass. *)

module Pipe = Ash_pipes.Pipe
module Pipelib = Ash_pipes.Pipelib
module Dilp = Ash_pipes.Dilp

let striped_source m ~len ~seed =
  let mem = Machine.mem m in
  let stripes = (len + 15) / 16 in
  let region = Memory.alloc mem ~name:"striped" (stripes * 32) in
  let payload = Bytes.create len in
  Ash_util.Rng.fill_bytes (Ash_util.Rng.create seed) payload;
  for s = 0 to stripes - 1 do
    let chunk = min 16 (len - (s * 16)) in
    Memory.blit_from_bytes mem ~src:payload ~src_off:(s * 16)
      ~dst:(region.Memory.base + (s * 32))
      ~len:chunk
  done;
  region.Memory.base

let striped_one_pass ~len () =
  let m = Machine.create Costs.decstation in
  let mem = Machine.mem m in
  let src = striped_source m ~len ~seed:31 in
  let dst = (Memory.alloc mem ~name:"dst" len).Memory.base in
  let pl = Pipe.Pipelist.create () in
  let _, acc = Pipelib.cksum32 pl in
  let c = Dilp.compile ~layout:Dilp.eth_striped pl Dilp.Write in
  Machine.flush_cache m;
  ignore (Machine.take_ns m);
  ignore (Dilp.execute_exn m c ~init:[ (acc, 0) ] ~src ~dst ~len);
  Ash_sim.Time.us_of_ns (Machine.take_ns m)

let destripe_then_dilp ~len () =
  let m = Machine.create Costs.decstation in
  let mem = Machine.mem m in
  let src = striped_source m ~len ~seed:31 in
  let mid = (Memory.alloc mem ~name:"mid" len).Memory.base in
  let dst = (Memory.alloc mem ~name:"dst" len).Memory.base in
  let pl = Pipe.Pipelist.create () in
  let _, acc = Pipelib.cksum32 pl in
  let c = Dilp.compile pl Dilp.Write in
  Machine.flush_cache m;
  ignore (Machine.take_ns m);
  let off = ref 0 in
  while !off < len do
    let chunk = min 16 (len - !off) in
    Machine.copy m ~src:(src + (2 * !off)) ~dst:(mid + !off) ~len:chunk;
    off := !off + chunk
  done;
  ignore (Dilp.execute_exn m c ~init:[ (acc, 0) ] ~src:mid ~dst ~len);
  Ash_sim.Time.us_of_ns (Machine.take_ns m)

(* Ablation A5: download-time abstract interpretation (§III-B). How
   much of the sandbox's added-instruction and cycle cost does the
   static analyzer recover on the remote-write handlers, and what does
   specializing the exit code (§V-D) add on top? *)

let absint () =
  let module S = Ash_vm.Sandbox in
  let module E = Exp_sandbox in
  let added ~absint ~specialize_exit variant =
    (E.sandbox_stats ~absint ~specialize_exit ~variant ()).S.added
  in
  let cycles ~absint ~specialize_exit variant =
    (E.run_once ~absint ~specialize_exit ~variant ~sandboxed:true
       ~payload_len:40 ())
      .Ash_vm.Interp.cycles
  in
  let variants =
    [ (E.Specific, "specific"); (E.Guarded, "guarded");
      (E.Generic, "generic") ]
  in
  let rows =
    List.concat_map
      (fun (v, vname) ->
         let plain_added = added ~absint:false ~specialize_exit:false v in
         let ai_added = added ~absint:true ~specialize_exit:false v in
         let full_added = added ~absint:true ~specialize_exit:true v in
         let plain_cyc = cycles ~absint:false ~specialize_exit:false v in
         let ai_cyc = cycles ~absint:true ~specialize_exit:false v in
         let full_cyc = cycles ~absint:true ~specialize_exit:true v in
         [
           Report.row
             ~label:(Printf.sprintf "%s | added insns, checks everywhere" vname)
             ~measured:(float_of_int plain_added) ~unit_:"insns" ();
           Report.row
             ~label:(Printf.sprintf "%s | added insns, absint" vname)
             ~measured:(float_of_int ai_added) ~unit_:"insns" ();
           Report.row
             ~label:
               (Printf.sprintf "%s | added insns, absint + specialized exit"
                  vname)
             ~measured:(float_of_int full_added) ~unit_:"insns" ();
           Report.row
             ~label:(Printf.sprintf "%s | 40 B run, checks everywhere" vname)
             ~measured:(float_of_int plain_cyc) ~unit_:"cycles" ();
           Report.row
             ~label:(Printf.sprintf "%s | 40 B run, absint" vname)
             ~measured:(float_of_int ai_cyc) ~unit_:"cycles" ();
           Report.row
             ~label:
               (Printf.sprintf "%s | 40 B run, absint + specialized exit"
                  vname)
             ~measured:(float_of_int full_cyc) ~unit_:"cycles" ();
         ])
      variants
  in
  {
    Report.id = "ablation-absint";
    title =
      "Ablation A5: download-time abstract interpretation — sandbox \
       checks elided and cycles recovered on the DSM remote write";
    rows;
    notes =
      [
        "absint proves loads/stores in-bounds (message-relative \
         intervals), divisors nonzero, and covered-by-earlier-access \
         windows, then drops exactly those checks; the run faults \
         identically by construction (see test/test_absint.ml)";
        "'specialized exit' additionally drops the overly general exit \
         code the paper's §V-D blames for most of the residual overhead";
      ];
  }

let striped () =
  let rows =
    List.concat_map
      (fun len ->
         [
           Report.row
             ~label:(Printf.sprintf "%4d B | destripe copy + DILP" len)
             ~measured:(destripe_then_dilp ~len ()) ~unit_:"us" ();
           Report.row
             ~label:(Printf.sprintf "%4d B | striped DILP back end" len)
             ~measured:(striped_one_pass ~len ()) ~unit_:"us" ();
         ])
      [ 256; 1024; 1440 ]
  in
  {
    Report.id = "ablation-striped";
    title =
      "Ablation A3: Ethernet striped receive buffers — separate de-stripe \
       vs the interface-specific DILP back end (copy + checksum)";
    rows;
    notes =
      [
        "sec III-C: only the back end of the DILP engine changes per \
         network interface; the fused striped loop saves the whole \
         de-striping traversal";
      ];
  }
