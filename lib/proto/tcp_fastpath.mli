(** The TCP common-case fast-path handler (§V-B).

    "Our TCP implementation lowers the cost of data transfer by placing
    the common-case fast path in a handler which can be run either as an
    ASH or an upcall. This handler employs dynamic ILP to combine the
    checksum and copy of message data."

    The generated handler runs when all of the paper's constraints hold —
    the packet is the predicted next in-order segment with plain ACK
    flags, the library is not using the TCB, and the library is not
    behind — and otherwise takes the voluntary-abort path so the
    user-level library handles the segment. On the fast path it:

    - validates ports, flags and sequence number against the TCB;
    - processes the acknowledgment (advancing [snd_una]);
    - for data segments, runs the registered DILP transfer to copy the
      payload into the receive buffer while checksumming it, verifies
      the checksum against the header field, advances [rcv_nxt] and
      [rcv_off], and transmits an ACK built from the library's
      pre-initialized template;
    - commits, consuming the message.

    The TCB address and DILP handle are baked into the emitted code as
    immediates — per-connection dynamic code generation, like DPF's
    constant specialization. *)

type config = {
  tcb_addr : int;
  checksum : bool;
  dilp_id : int;
  (** Registered handle of the copy(+checksum) transfer to use. *)
  cksum_acc_reg : Ash_vm.Isa.reg;
  (** Persistent register holding the checksum accumulator in the
      compiled pipe list (meaningful when [checksum]). *)
}

val program : config -> Ash_vm.Program.t

val note_hit : unit -> unit
(** Emit a [Tcp_fast_hit] trace event (fast-path handler committed). *)

val note_miss : unit -> unit
(** Emit a [Tcp_fast_miss] trace event (segment fell back to the
    user-level library). *)
