(** The user-level UDP library (§IV-D): "a straightforward
    implementation of the UDP protocol as specified in RFC 768", linked
    into the application and running over the raw AN2 or Ethernet
    interface.

    Delivery configurations mirror Table II's rows:
    - [in_place = true]: the application consumes the payload where the
      board DMA'ed it (zero copy); otherwise the library copies it into
      an application data buffer through a traditional read interface.
    - [checksum = true]: the library computes/verifies the end-to-end
      Internet checksum over the payload (non-integrated: a separate
      traversal, like a conventional stack).

    On AN2 the socket is demultiplexed by virtual circuit ("the UDP
    implementation currently uses only the VC index"); on Ethernet a DPF
    filter on the UDP destination port does the demux. *)

type medium =
  | An2 of { vc : int }
  | Ethernet  (** demux by a compiled DPF filter on the UDP port. *)

type config = {
  medium : medium;
  local_ip : int;
  local_port : int;
  remote_ip : int;
  remote_port : int;
  checksum : bool;
  in_place : bool;
  rx_buffers : int;     (** Receive buffers to pin and post (AN2). *)
  mtu_payload : int;    (** Maximum UDP payload this socket accepts. *)
}

val default_config : config
(** AN2 VC 5, ports 7000->7001, checksum off, copy mode, 8 buffers,
    3044-byte max payload (3072-byte AN2 MTU minus headers). *)

type t

type stats = {
  tx_datagrams : int;
  rx_datagrams : int;
  rx_bad_header : int;
  rx_bad_checksum : int;
}

val create : Ash_kern.Kernel.t -> config -> t
(** Binds the demux point, allocates and posts receive buffers, installs
    the receive path. *)

val set_receiver : t -> (addr:int -> len:int -> unit) -> unit
(** Application datagram handler. [addr] is the payload's address in
    application memory: inside the receive buffer for [in_place]
    sockets, inside the library's application-side data buffer after the
    read-interface copy otherwise. The buffer is valid until the handler
    returns. *)

val teardown : t -> unit
(** Remove the demux binding (Ethernet filter or AN2 VC) and free the
    endpoint's memory regions. The endpoint must not be used
    afterwards; late datagrams drop as demux misses. *)

val send : t -> addr:int -> len:int -> unit
(** Send [len] payload bytes from application memory: allocates a send
    buffer, copies the payload into it, fills IP/UDP headers, optionally
    checksums, and transmits via the user send path. Raises
    [Invalid_argument] if [len] exceeds the configured maximum. *)

val send_string : t -> string -> unit
(** Convenience for examples: stage a string into the socket's staging
    region, then {!send}. *)

val stats : t -> stats
