module Kernel = Ash_kern.Kernel
module Dpf = Ash_kern.Dpf
module Machine = Ash_sim.Machine
module Memory = Ash_sim.Memory
module Baseline = Ash_pipes.Baseline
module Checksum = Ash_util.Checksum

type medium = An2 of { vc : int } | Ethernet

type config = {
  medium : medium;
  local_ip : int;
  local_port : int;
  remote_ip : int;
  remote_port : int;
  checksum : bool;
  in_place : bool;
  rx_buffers : int;
  mtu_payload : int;
}

let default_config =
  {
    medium = An2 { vc = 5 };
    local_ip = 0x0a000001;
    local_port = 7000;
    remote_ip = 0x0a000002;
    remote_port = 7001;
    checksum = false;
    in_place = false;
    rx_buffers = 8;
    mtu_payload = 3072 - Packet.ip_header_len - Packet.udp_header_len;
  }

type stats = {
  tx_datagrams : int;
  rx_datagrams : int;
  rx_bad_header : int;
  rx_bad_checksum : int;
}

type t = {
  kernel : Kernel.t;
  cfg : config;
  bind_vc : int; (* real vc or Ethernet pseudo-vc *)
  send_buf : Memory.region;
  staging : Memory.region;
  app_buf : Memory.region;
  mutable receiver : (addr:int -> len:int -> unit) option;
  mutable ip_id : int;
  mutable s_tx : int;
  mutable s_rx : int;
  mutable s_bad_hdr : int;
  mutable s_bad_cksum : int;
}

let headers_len = Packet.ip_header_len + Packet.udp_header_len

(* The receive path of the library: header validation, optional
   end-to-end checksum, then either in-place delivery or the
   read-interface copy into application data structures (§IV-D). *)
let on_datagram_body t ~addr ~len =
  let m = Kernel.machine t.kernel in
  Kernel.app_compute t.kernel Protocost.udp_rx_overhead_ns;
  if len < headers_len then t.s_bad_hdr <- t.s_bad_hdr + 1
  else begin
    (* Touch the header fields the real code reads (charged loads),
       then validate logically over a host-side view. *)
    ignore (Machine.load16 m addr);
    ignore (Machine.load32 m (addr + 12));
    ignore (Machine.load16 m (addr + Packet.ip_header_len + 2));
    ignore (Machine.load16 m (addr + Packet.ip_header_len + 4));
    let view = Bytes.create headers_len in
    Memory.blit_to_bytes (Machine.mem m) ~src:addr ~dst:view ~dst_off:0
      ~len:headers_len;
    match Packet.Ip.read view ~off:0 with
    | Error _ -> t.s_bad_hdr <- t.s_bad_hdr + 1
    | Ok ip ->
      if ip.Packet.Ip.proto <> Packet.Ip.proto_udp
         || ip.Packet.Ip.total_len > len
      then t.s_bad_hdr <- t.s_bad_hdr + 1
      else begin
        match Packet.Udp.read view ~off:Packet.ip_header_len with
        | Error _ -> t.s_bad_hdr <- t.s_bad_hdr + 1
        | Ok udp ->
          let plen = udp.Packet.Udp.length - Packet.udp_header_len in
          if plen < 0 || udp.Packet.Udp.dst_port <> t.cfg.local_port
             || headers_len + plen > len
          then t.s_bad_hdr <- t.s_bad_hdr + 1
          else begin
            let payload = addr + headers_len in
            let cksum_ok =
              if not t.cfg.checksum then true
              else begin
                Kernel.app_compute t.kernel Protocost.cksum_call_overhead_ns;
                let sum = Baseline.cksum16_pass m ~addr:payload ~len:plen in
                Checksum.fold16 sum land 0xffff
                = udp.Packet.Udp.checksum
              end
            in
            if not cksum_ok then t.s_bad_cksum <- t.s_bad_cksum + 1
            else begin
              t.s_rx <- t.s_rx + 1;
              let deliver_addr =
                if t.cfg.in_place then payload
                else begin
                  (* Traditional read interface: copy into the
                     application's data structures. *)
                  Machine.copy m ~src:payload ~dst:t.app_buf.Memory.base
                    ~len:plen;
                  t.app_buf.Memory.base
                end
              in
              match t.receiver with
              | Some f -> f ~addr:deliver_addr ~len:plen
              | None -> ()
            end
          end
      end
  end

let on_datagram t ~addr ~len =
  let module Trace = Ash_obs.Trace in
  let module Span = Ash_obs.Span in
  let corr = Trace.current_corr () in
  if Trace.enabled () then
    Span.begin_span ~corr ~off:(Kernel.span_off t.kernel) Trace.Proto;
  on_datagram_body t ~addr ~len;
  if Trace.enabled () then
    Span.end_span ~corr ~off:(Kernel.span_off t.kernel) Trace.Proto

let repost_rx_buffer t ~addr ~len =
  match t.cfg.medium with
  | An2 { vc } -> Kernel.post_receive_buffer t.kernel ~vc ~addr ~len
  | Ethernet -> () (* kernel pktbufs are managed by the kernel *)

let create kernel cfg =
  let mem = Machine.mem (Kernel.machine kernel) in
  let frame_len = cfg.mtu_payload + headers_len in
  let bind_vc =
    match cfg.medium with
    | An2 { vc } ->
      Kernel.bind_vc kernel ~vc Kernel.Deliver_user;
      vc
    | Ethernet ->
      (* DPF demux: IPv4 + UDP + our destination port. *)
      let filter =
        [
          Dpf.atom ~offset:9 ~width:1 Packet.Ip.proto_udp;
          Dpf.atom ~offset:(Packet.ip_header_len + 2) ~width:2 cfg.local_port;
        ]
      in
      Kernel.bind_eth_filter kernel filter ~compiled:true Kernel.Deliver_user
  in
  let t =
    {
      kernel;
      cfg;
      bind_vc;
      send_buf = Memory.alloc mem ~name:"udp-sendbuf" frame_len;
      staging = Memory.alloc mem ~name:"udp-staging" (max cfg.mtu_payload 16);
      app_buf = Memory.alloc mem ~name:"udp-appbuf" (max cfg.mtu_payload 16);
      receiver = None;
      ip_id = 1;
      s_tx = 0;
      s_rx = 0;
      s_bad_hdr = 0;
      s_bad_cksum = 0;
    }
  in
  (match cfg.medium with
   | An2 { vc } ->
     for i = 1 to cfg.rx_buffers do
       let r =
         Memory.alloc mem ~name:(Printf.sprintf "udp-rx-%d" i) frame_len
       in
       Kernel.post_receive_buffer kernel ~vc ~addr:r.Memory.base
         ~len:r.Memory.len
     done
   | Ethernet -> ());
  Kernel.set_user_handler kernel ~vc:bind_vc (fun ~addr ~len ->
      on_datagram t ~addr ~len;
      repost_rx_buffer t ~addr ~len);
  t

let set_receiver t f = t.receiver <- Some f

(* Mirror of {!Tcp.teardown}: drop the demux binding and free the
   endpoint's regions (AN2 receive buffers stay allocated — the board
   forgets them with the VC). *)
let teardown t =
  t.receiver <- None;
  (match t.cfg.medium with
   | Ethernet -> Kernel.unbind_eth_filter t.kernel ~vc:t.bind_vc
   | An2 { vc } -> Kernel.unbind_vc t.kernel ~vc);
  let mem = Machine.mem (Kernel.machine t.kernel) in
  List.iter (Memory.free mem) [ t.app_buf; t.staging; t.send_buf ]

let send t ~addr ~len =
  if len < 0 || len > t.cfg.mtu_payload then invalid_arg "Udp.send: length";
  let m = Kernel.machine t.kernel in
  Kernel.app_compute t.kernel Protocost.udp_send_overhead_ns;
  let base = t.send_buf.Memory.base in
  (* Copy the payload into the freshly allocated send buffer. *)
  Machine.copy m ~src:addr ~dst:(base + headers_len) ~len;
  let cksum =
    if not t.cfg.checksum then 0
    else begin
      Kernel.app_compute t.kernel Protocost.cksum_call_overhead_ns;
      Checksum.fold16 (Baseline.cksum16_pass m ~addr:(base + headers_len) ~len)
    end
  in
  (* Initialize IP and UDP fields (build on the host view, write the
     header bytes into the send buffer; header-size stores charged). *)
  let hdr = Bytes.create headers_len in
  Packet.Ip.write hdr ~off:0
    {
      Packet.Ip.src = t.cfg.local_ip;
      dst = t.cfg.remote_ip;
      proto = Packet.Ip.proto_udp;
      total_len = headers_len + len;
      ttl = 64;
      id = t.ip_id;
    };
  t.ip_id <- (t.ip_id + 1) land 0xffff;
  Packet.Udp.write hdr ~off:Packet.ip_header_len
    {
      Packet.Udp.src_port = t.cfg.local_port;
      dst_port = t.cfg.remote_port;
      length = Packet.udp_header_len + len;
      checksum = cksum;
    };
  Memory.blit_from_bytes (Machine.mem m) ~src:hdr ~src_off:0 ~dst:base
    ~len:headers_len;
  Machine.charge_cycles m (headers_len / 4 * 3); (* header field stores *)
  (* Hand the frame to the kernel's user-level send path. *)
  let frame = Bytes.create (headers_len + len) in
  Memory.blit_to_bytes (Machine.mem m) ~src:base ~dst:frame ~dst_off:0
    ~len:(headers_len + len);
  t.s_tx <- t.s_tx + 1;
  (match t.cfg.medium with
   | An2 { vc } -> Kernel.user_send t.kernel ~vc frame
   | Ethernet -> Kernel.eth_user_send t.kernel frame)

let send_string t s =
  let len = String.length s in
  if len > t.staging.Memory.len then invalid_arg "Udp.send_string: too long";
  Memory.blit_from_bytes
    (Machine.mem (Kernel.machine t.kernel))
    ~src:(Bytes.of_string s) ~src_off:0 ~dst:t.staging.Memory.base ~len;
  send t ~addr:t.staging.Memory.base ~len

let stats t =
  {
    tx_datagrams = t.s_tx;
    rx_datagrams = t.s_rx;
    rx_bad_header = t.s_bad_hdr;
    rx_bad_checksum = t.s_bad_cksum;
  }
