module Kernel = Ash_kern.Kernel
module Dpf = Ash_kern.Dpf
module Machine = Ash_sim.Machine
module Memory = Ash_sim.Memory
module Engine = Ash_sim.Engine
module Baseline = Ash_pipes.Baseline
module Pipe = Ash_pipes.Pipe
module Pipelib = Ash_pipes.Pipelib
module Dilp = Ash_pipes.Dilp
module Checksum = Ash_util.Checksum

type mode = Library | Fast_ash of { sandbox : bool } | Fast_upcall

type medium = Tcp_an2 of { vc : int } | Tcp_ethernet

type rto_policy =
  | Rto_fixed of int
  | Rto_adaptive of { init_ns : int; min_ns : int; max_ns : int }

let default_rto =
  Rto_adaptive
    { init_ns = 20_000_000; min_ns = 1_000_000; max_ns = 320_000_000 }

type config = {
  medium : medium;
  local_ip : int;
  local_port : int;
  remote_ip : int;
  remote_port : int;
  mss : int;
  window : int;
  checksum : bool;
  in_place : bool;
  mode : mode;
  rx_buffers : int;
  iss : int;
  rto : rto_policy;
  fast_retransmit : bool;
  dup_ack_threshold : int;
}

let default_config =
  {
    medium = Tcp_an2 { vc = 6 };
    local_ip = 0x0a000001;
    local_port = 4000;
    remote_ip = 0x0a000002;
    remote_port = 4001;
    mss = 3072;
    window = 8192;
    checksum = true;
    in_place = false;
    mode = Library;
    rx_buffers = 8;
    iss = 1000;
    rto = default_rto;
    fast_retransmit = true;
    dup_ack_threshold = 3;
  }

type stats = {
  segments_sent : int;
  segments_received : int;
  fast_path_data : int;
  fast_path_acks : int;
  fast_path_aborts : int;
  retransmits : int;
  timeout_retransmits : int;
  fast_retransmits : int;
  dup_acks_received : int;
  spurious_timeouts : int;
  out_of_order : int;
  bad_checksums : int;
}

type write_op = {
  src_addr : int;
  src_len : int;
  mutable sent : int;
  end_seq : int;
  on_complete : unit -> unit;
}

(* An outstanding (unacknowledged) segment. [sent_at] is the time of
   the most recent transmission; [rexmitted] implements Karn's rule:
   once a segment has been resent, an ack for it is ambiguous and must
   not produce an RTT sample. *)
type seg = {
  end_seq : int;
  frame : Bytes.t;
  mutable sent_at : int;
  mutable rexmitted : bool;
}

type t = {
  kernel : Kernel.t;
  cfg : config;
  mutable bind_vc : int;
  (* real AN2 vc, or the Ethernet binding's pseudo-vc (assigned when the
     filter is installed) *)
  tcb : Memory.region;
  rcv_buf : Memory.region;
  ack_buf : Memory.region;
  snd_buf : Memory.region;   (* per-segment staging for the data copy *)
  staging : Memory.region;   (* for write_string *)
  mutable pending_write : write_op option;
  mutable unacked : seg list; (* newest first *)
  mutable rt_timer : Engine.event_id option;
  (* Jacobson/Karn retransmission state (all ns; srtt < 0 = no sample
     yet). [rto_cur] is the smoothed estimate before backoff; the
     effective timeout is [current_rto]. *)
  mutable srtt : int;
  mutable rttvar : int;
  mutable rto_cur : int;
  mutable backoff : int;
  mutable min_rtt : int; (* max_int until the first sample *)
  mutable dup_acks : int; (* consecutive, since the last fresh ack *)
  mutable rto_last : (int * int) option; (* (fired_at, snd_una then) *)
  mutable reader : (addr:int -> len:int -> unit) option;
  mutable on_connected : (unit -> unit) option;
  mutable on_closed : (unit -> unit) option;
  mutable on_peer_fin : (unit -> unit) option;
  mutable delivered_off : int;
  mutable sent_during_delivery : bool;
  mutable ip_id : int;
  (* stats *)
  mutable s_tx : int;
  mutable s_rx : int;
  mutable s_rexmit : int;
  mutable s_rexmit_to : int;
  mutable s_fast_rexmit : int;
  mutable s_dup_acks : int;
  mutable s_spurious : int;
  mutable s_ooo : int;
  mutable s_bad_cksum : int;
}

let headers_len = Packet.ip_header_len + Packet.tcp_header_len
let ack_send_overhead_ns = 7_000

(* RTO floor on the variance term: with a near-constant simulated RTT
   the variance collapses, and srtt alone would time out on the first
   queueing delay. *)
let rtt_granularity_ns = 100_000

let mem t = Machine.mem (Kernel.machine t.kernel)
let machine t = Kernel.machine t.kernel
let tcb_get t off = Tcb.get (mem t) ~base:t.tcb.Memory.base off
let tcb_set t off v = Tcb.set (mem t) ~base:t.tcb.Memory.base off v

let state t = tcb_get t Tcb.off_state
let set_state t s = tcb_set t Tcb.off_state s

let state_name t =
  match state t with
  | 0 -> "CLOSED"
  | 1 -> "LISTEN"
  | 2 -> "SYN_SENT"
  | 3 -> "SYN_RCVD"
  | 4 -> "ESTABLISHED"
  | 5 -> "FIN_WAIT_1"
  | 6 -> "FIN_WAIT_2"
  | 7 -> "CLOSE_WAIT"
  | 8 -> "LAST_ACK"
  | 9 -> "TIME_WAIT"
  | _ -> "?"

let established t = state t = Tcb.st_established

(* ------------------------------------------------------------------ *)
(* Segment construction and transmission                               *)
(* ------------------------------------------------------------------ *)

(* Build a segment as a host frame. Data payload is staged through the
   send buffer with a charged copy (the library buffers outgoing data
   for retransmission); the checksum pass is charged through the cache
   model. *)
let build_segment t ~flags ~seq ~ack ~payload =
  let m = machine t in
  let plen, cksum =
    match payload with
    | None -> (0, 0)
    | Some (src, len) ->
      Machine.copy m ~src ~dst:(t.snd_buf.Memory.base + headers_len) ~len;
      let c =
        if not t.cfg.checksum then 0
        else begin
          Kernel.app_compute t.kernel
            (Protocost.cksum_call_overhead_ns + Protocost.tcp_cksum_extra_ns);
          Checksum.fold16
            (Baseline.cksum16_pass m
               ~addr:(t.snd_buf.Memory.base + headers_len)
               ~len)
        end
      in
      (len, c)
  in
  let frame = Bytes.create (headers_len + plen) in
  Packet.Ip.write frame ~off:0
    {
      Packet.Ip.src = t.cfg.local_ip;
      dst = t.cfg.remote_ip;
      proto = Packet.Ip.proto_tcp;
      total_len = headers_len + plen;
      ttl = 64;
      id = t.ip_id;
    };
  t.ip_id <- (t.ip_id + 1) land 0xffff;
  Packet.Tcp.write frame ~off:Packet.ip_header_len
    {
      Packet.Tcp.src_port = t.cfg.local_port;
      dst_port = t.cfg.remote_port;
      seq;
      ack;
      flags;
      window = t.cfg.window;
      checksum = cksum;
    };
  if plen > 0 then
    Memory.blit_to_bytes (mem t)
      ~src:(t.snd_buf.Memory.base + headers_len)
      ~dst:frame ~dst_off:headers_len ~len:plen;
  frame

let xmit t frame =
  t.s_tx <- t.s_tx + 1;
  match t.cfg.medium with
  | Tcp_an2 { vc } -> Kernel.user_send t.kernel ~vc frame
  | Tcp_ethernet -> Kernel.eth_user_send t.kernel frame

let now_ns t = Engine.now (Kernel.engine t.kernel)

(* The effective retransmission timeout. Under the fixed policy this is
   the historical crude constant — no backoff, no adaptation — kept as
   the measurable baseline (ashbench chaos compares the two). *)
let current_rto t =
  match t.cfg.rto with
  | Rto_fixed ns -> ns
  | Rto_adaptive { min_ns; max_ns; _ } ->
    let backed = t.rto_cur lsl min t.backoff 16 in
    min max_ns (max min_ns backed)

(* Jacobson's estimator (RFC 6298 gains): SRTT <- 7/8 SRTT + 1/8 R,
   RTTVAR <- 3/4 RTTVAR + 1/4 |SRTT - R|. *)
let rtt_sample t sample =
  if sample >= 0 then begin
    if t.srtt < 0 then begin
      t.srtt <- sample;
      t.rttvar <- sample / 2
    end
    else begin
      t.rttvar <- ((3 * t.rttvar) + abs (t.srtt - sample)) / 4;
      t.srtt <- ((7 * t.srtt) + sample) / 8
    end;
    if sample < t.min_rtt then t.min_rtt <- sample;
    t.rto_cur <- t.srtt + max rtt_granularity_ns (4 * t.rttvar)
  end

(* Go-back-N: resend everything outstanding, marking each segment
   retransmitted so Karn's rule suppresses its RTT sample. [how] names
   the cause ("timeout" or "fast") on the per-segment trace event —
   the flight recorder's retransmit-storm trigger counts these. *)
let resend_outstanding t ~how =
  let module Trace = Ash_obs.Trace in
  let now = now_ns t in
  List.iter
    (fun seg ->
       seg.rexmitted <- true;
       seg.sent_at <- now;
       t.s_rexmit <- t.s_rexmit + 1;
       if Trace.enabled () then
         Trace.emit (Trace.Tcp_retransmit { how; seq = seg.end_seq });
       Kernel.app_compute t.kernel Protocost.tcp_send_overhead_ns;
       xmit t (Bytes.copy seg.frame))
    (List.rev t.unacked)

(* FIN retry limit in LAST_ACK (the R2 limit of real stacks): a peer
   that actively closed and already reclaimed its binding will never
   ack our FIN — its late segments drop as demux misses — so after this
   many consecutive timeouts the passive closer gives up and finishes
   unilaterally instead of retransmitting forever. *)
let last_ack_max_backoff = 6

let rec arm_rt_timer t =
  match t.rt_timer with
  | Some _ -> ()
  | None ->
    t.rt_timer <-
      Some
        (Engine.schedule
           (Kernel.engine t.kernel)
           ~delay:(current_rto t)
           (fun () ->
              t.rt_timer <- None;
              if t.unacked <> [] then begin
                if state t = Tcb.st_last_ack
                   && t.backoff >= last_ack_max_backoff
                then begin
                  t.unacked <- [];
                  set_state t Tcb.st_closed;
                  match t.on_closed with
                  | Some f ->
                    t.on_closed <- None;
                    f ()
                  | None -> ()
                end
                else begin
                  t.s_rexmit_to <- t.s_rexmit_to + 1;
                  t.rto_last <- Some (now_ns t, tcb_get t Tcb.off_snd_una);
                  (* Exponential backoff until a fresh ack arrives (only
                     the adaptive policy consults it). *)
                  t.backoff <- t.backoff + 1;
                  resend_outstanding t ~how:"timeout";
                  arm_rt_timer t
                end
              end))

let cancel_rt_timer t =
  match t.rt_timer with
  | Some id ->
    Engine.cancel (Kernel.engine t.kernel) id;
    t.rt_timer <- None
  | None -> ()

(* Restart the timer for the (possibly changed) outstanding window. *)
let restart_rt_timer t =
  cancel_rt_timer t;
  if t.unacked <> [] then arm_rt_timer t

(* Three duplicate acks mean the peer keeps receiving segments beyond a
   hole: retransmit without waiting for the timer (§IV-D calls the
   library's lack of this out; the adaptive stack adds it). The library
   has no reassembly queue on the receive side, so the whole window is
   resent (go-back-N), not just the first segment. *)
let fast_retransmit t =
  t.s_fast_rexmit <- t.s_fast_rexmit + 1;
  resend_outstanding t ~how:"fast";
  restart_rt_timer t

let send_pure_ack t =
  Kernel.app_compute t.kernel ack_send_overhead_ns;
  let frame =
    build_segment t ~flags:Packet.Tcp.flag_ack
      ~seq:(tcb_get t Tcb.off_snd_nxt)
      ~ack:(tcb_get t Tcb.off_rcv_nxt)
      ~payload:None
  in
  xmit t frame

let send_data_segment t ~src ~len =
  Kernel.app_compute t.kernel Protocost.tcp_send_overhead_ns;
  let seq = tcb_get t Tcb.off_snd_nxt in
  let frame =
    build_segment t ~flags:Packet.Tcp.flag_ack ~seq
      ~ack:(tcb_get t Tcb.off_rcv_nxt)
      ~payload:(Some (src, len))
  in
  tcb_set t Tcb.off_snd_nxt (seq + len);
  t.unacked <-
    { end_seq = seq + len; frame; sent_at = now_ns t; rexmitted = false }
    :: t.unacked;
  t.sent_during_delivery <- true;
  arm_rt_timer t;
  xmit t (Bytes.copy frame)

(* ------------------------------------------------------------------ *)
(* Window pump and write completion                                    *)
(* ------------------------------------------------------------------ *)

let rec pump t =
  match t.pending_write with
  | None -> ()
  | Some w ->
    let snd_nxt = tcb_get t Tcb.off_snd_nxt in
    let snd_una = tcb_get t Tcb.off_snd_una in
    let inflight = snd_nxt - snd_una in
    let remaining = w.src_len - w.sent in
    let room = t.cfg.window - inflight in
    if remaining > 0 && room > 0 then begin
      let seg = min t.cfg.mss (min remaining room) in
      send_data_segment t ~src:(w.src_addr + w.sent) ~len:seg;
      w.sent <- w.sent + seg;
      pump t
    end

let check_acks t =
  let una = tcb_get t Tcb.off_snd_una in
  t.unacked <- List.filter (fun seg -> seg.end_seq > una) t.unacked;
  if t.unacked = [] then cancel_rt_timer t;
  match t.pending_write with
  | Some w when w.sent = w.src_len && una >= w.end_seq ->
    t.pending_write <- None;
    Kernel.app_compute t.kernel Protocost.tcp_sync_write_return_ns;
    w.on_complete ()
  | Some _ -> pump t
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Receive-buffer delivery                                             *)
(* ------------------------------------------------------------------ *)

let deliver_from_rcv_buf t =
  let rcv_off = tcb_get t Tcb.off_rcv_off in
  if rcv_off > t.delivered_off then begin
    let base = t.rcv_buf.Memory.base + t.delivered_off in
    let n = rcv_off - t.delivered_off in
    t.delivered_off <- rcv_off;
    t.sent_during_delivery <- false;
    (match t.reader with Some f -> f ~addr:base ~len:n | None -> ());
    (* Reset the ring when drained so the fast path never wraps. *)
    if t.delivered_off = tcb_get t Tcb.off_rcv_off then begin
      tcb_set t Tcb.off_rcv_off 0;
      t.delivered_off <- 0
    end
  end

(* ------------------------------------------------------------------ *)
(* The library receive path                                            *)
(* ------------------------------------------------------------------ *)

let parse_segment t ~addr ~len =
  if len < headers_len then None
  else begin
    let view = Bytes.create headers_len in
    Memory.blit_to_bytes (mem t) ~src:addr ~dst:view ~dst_off:0
      ~len:headers_len;
    match Packet.Ip.read view ~off:0 with
    | Error _ -> None
    | Ok ip ->
      if ip.Packet.Ip.proto <> Packet.Ip.proto_tcp || ip.Packet.Ip.total_len > len
      then None
      else begin
        match Packet.Tcp.read view ~off:Packet.ip_header_len with
        | Error _ -> None
        | Ok tcp ->
          if tcp.Packet.Tcp.dst_port <> t.cfg.local_port
             || tcp.Packet.Tcp.src_port <> t.cfg.remote_port
          then None
          else Some (tcp, ip.Packet.Ip.total_len - headers_len)
      end
  end

let process_ack t (tcp : Packet.Tcp.t) ~plen =
  if tcp.Packet.Tcp.flags.Packet.Tcp.ack then begin
    let snd_nxt = tcb_get t Tcb.off_snd_nxt in
    let snd_una = tcb_get t Tcb.off_snd_una in
    let a = tcp.Packet.Tcp.ack in
    if a > snd_una && a <= snd_nxt then begin
      let now = now_ns t in
      (* Karn's rule: only a never-retransmitted segment covered by
         this ack yields an RTT sample (the newest such one). *)
      let sample =
        List.fold_left
          (fun acc seg ->
             if seg.end_seq <= a && not seg.rexmitted then
               match acc with
               | Some best when best >= seg.sent_at -> acc
               | _ -> Some seg.sent_at
             else acc)
          None t.unacked
      in
      (match sample with
       | Some sent -> rtt_sample t (now - sent)
       | None -> ());
      (* Spurious-timeout heuristic: progress arriving sooner after an
         RTO firing than the fastest round trip ever observed must have
         been triggered by the original transmission, not the resend. *)
      (match t.rto_last with
       | Some (fired_at, una_then) when a > una_then ->
         if t.min_rtt < max_int && now - fired_at < t.min_rtt then
           t.s_spurious <- t.s_spurious + 1;
         t.rto_last <- None
       | _ -> ());
      (* Fresh ack: collapse the backoff and the dup-ack run, restart
         the timer for what is still outstanding (RFC 6298 5.3). *)
      t.backoff <- 0;
      t.dup_acks <- 0;
      tcb_set t Tcb.off_snd_una a;
      cancel_rt_timer t;
      check_acks t;
      if t.unacked <> [] then arm_rt_timer t
    end
    else if
      a = snd_una && plen = 0 && t.unacked <> []
      && state t = Tcb.st_established
    then begin
      (* A pure ack that moves nothing while data is outstanding: the
         receiver is telling us it got something out of order. *)
      t.s_dup_acks <- t.s_dup_acks + 1;
      t.dup_acks <- t.dup_acks + 1;
      if t.cfg.fast_retransmit && t.dup_acks = t.cfg.dup_ack_threshold then
        fast_retransmit t
    end
  end

let verify_payload_cksum t (tcp : Packet.Tcp.t) ~payload_addr ~plen =
  if not t.cfg.checksum || plen = 0 then true
  else begin
    Kernel.app_compute t.kernel
      (Protocost.cksum_call_overhead_ns + Protocost.tcp_cksum_extra_ns);
    let sum =
      Checksum.fold16
        (Baseline.cksum16_pass (machine t) ~addr:payload_addr ~len:plen)
    in
    if sum = tcp.Packet.Tcp.checksum then true
    else begin
      t.s_bad_cksum <- t.s_bad_cksum + 1;
      false
    end
  end

let handle_established t (tcp : Packet.Tcp.t) ~addr ~plen =
  let flags = tcp.Packet.Tcp.flags in
  process_ack t tcp ~plen;
  let rcv_nxt = tcb_get t Tcb.off_rcv_nxt in
  if plen > 0 then begin
    if tcp.Packet.Tcp.seq = rcv_nxt then begin
      let payload_addr = addr + headers_len in
      if verify_payload_cksum t tcp ~payload_addr ~plen then begin
        tcb_set t Tcb.off_rcv_nxt (rcv_nxt + plen);
        t.sent_during_delivery <- false;
        if t.cfg.in_place then begin
          (* Zero copy: the application consumes the data where the
             board DMA'ed it. *)
          match t.reader with
          | Some f -> f ~addr:payload_addr ~len:plen
          | None -> ()
        end
        else begin
          (* Traditional read interface: copy into the receive buffer
             (an additional copy the paper calls out, §IV-D). *)
          let off = tcb_get t Tcb.off_rcv_off in
          if off + plen <= t.rcv_buf.Memory.len then begin
            Machine.copy (machine t) ~src:payload_addr
              ~dst:(t.rcv_buf.Memory.base + off)
              ~len:plen;
            tcb_set t Tcb.off_rcv_off (off + plen);
            deliver_from_rcv_buf t
          end
        end;
        (* Piggyback: if the reader wrote, that segment carried the
           ack; otherwise acknowledge explicitly. *)
        if not t.sent_during_delivery then send_pure_ack t
      end
    end
    else if tcp.Packet.Tcp.seq < rcv_nxt then
      (* Old duplicate (e.g. a retransmission that crossed our ack):
         re-acknowledge. *)
      send_pure_ack t
    else begin
      (* Out of order: there is no reassembly queue (§IV-D), so the
         segment is dropped — but a duplicate ack for rcv_nxt tells the
         peer about the hole so it can fast-retransmit instead of
         waiting out its timer. *)
      t.s_ooo <- t.s_ooo + 1;
      send_pure_ack t
    end
  end;
  if flags.Packet.Tcp.fin && tcp.Packet.Tcp.seq + plen = tcb_get t Tcb.off_rcv_nxt
  then begin
    tcb_set t Tcb.off_rcv_nxt (tcb_get t Tcb.off_rcv_nxt + 1);
    set_state t Tcb.st_close_wait;
    send_pure_ack t;
    (* Passive-close notification: the application decides when to send
       its own FIN (a churn server closes here and then tears down). *)
    match t.on_peer_fin with Some f -> f () | None -> ()
  end

let handle_closing t (tcp : Packet.Tcp.t) ~plen =
  let flags = tcp.Packet.Tcp.flags in
  let st = state t in
  process_ack t tcp ~plen;
  let our_fin_acked =
    flags.Packet.Tcp.ack && tcp.Packet.Tcp.ack = tcb_get t Tcb.off_snd_nxt
  in
  let fin_arrived =
    flags.Packet.Tcp.fin && tcp.Packet.Tcp.seq + plen = tcb_get t Tcb.off_rcv_nxt
  in
  if fin_arrived then begin
    tcb_set t Tcb.off_rcv_nxt (tcb_get t Tcb.off_rcv_nxt + 1);
    send_pure_ack t
  end;
  let finish () =
    set_state t Tcb.st_closed;
    match t.on_closed with
    | Some f ->
      t.on_closed <- None;
      f ()
    | None -> ()
  in
  if st = Tcb.st_fin_wait_1 then begin
    if our_fin_acked && fin_arrived then finish ()
    else if our_fin_acked then set_state t Tcb.st_fin_wait_2
    else if fin_arrived then set_state t Tcb.st_time_wait
  end
  else if st = Tcb.st_fin_wait_2 then begin
    if fin_arrived then finish ()
  end
  else if st = Tcb.st_time_wait then begin
    if our_fin_acked then finish ()
  end
  else if st = Tcb.st_last_ack then begin
    if our_fin_acked then finish ()
  end

let on_segment_body t ~addr ~len =
  (* In the fast-path modes, reaching the library means the handler
     voluntarily aborted (or the segment arrived before setup). *)
  (match t.cfg.mode with
   | Library -> ()
   | Fast_ash _ | Fast_upcall -> Tcp_fastpath.note_miss ());
  tcb_set t Tcb.off_lib_busy 1;
  Kernel.app_compute t.kernel Protocost.tcp_header_predict_ns;
  (match parse_segment t ~addr ~len with
   | None -> ()
   | Some (tcp, plen) ->
     t.s_rx <- t.s_rx + 1;
     let flags = tcp.Packet.Tcp.flags in
     let st = state t in
     if st = Tcb.st_established
        && (not flags.Packet.Tcp.syn)
        && (not flags.Packet.Tcp.fin)
        && not flags.Packet.Tcp.rst
     then begin
       (* Header-predicted path: in-order data or a plain ack. *)
       if tcp.Packet.Tcp.seq <> tcb_get t Tcb.off_rcv_nxt && plen > 0 then
         Kernel.app_compute t.kernel Protocost.tcp_rx_overhead_ns;
       handle_established t tcp ~addr ~plen
     end
     else begin
       Kernel.app_compute t.kernel Protocost.tcp_rx_overhead_ns;
       if st = Tcb.st_established || st = Tcb.st_close_wait then
         handle_established t tcp ~addr ~plen
       else if st = Tcb.st_syn_sent then begin
         if flags.Packet.Tcp.syn && flags.Packet.Tcp.ack
            && tcp.Packet.Tcp.ack = t.cfg.iss + 1
         then begin
           tcb_set t Tcb.off_snd_una tcp.Packet.Tcp.ack;
           t.unacked <- [];
           cancel_rt_timer t;
           tcb_set t Tcb.off_rcv_nxt (tcp.Packet.Tcp.seq + 1);
           set_state t Tcb.st_established;
           send_pure_ack t;
           match t.on_connected with
           | Some f ->
             t.on_connected <- None;
             f ()
           | None -> ()
         end
       end
       else if st = Tcb.st_listen then begin
         if flags.Packet.Tcp.syn then begin
           tcb_set t Tcb.off_rcv_nxt (tcp.Packet.Tcp.seq + 1);
           set_state t Tcb.st_syn_rcvd;
           Kernel.app_compute t.kernel Protocost.tcp_send_overhead_ns;
           let frame =
             build_segment t ~flags:Packet.Tcp.flag_synack ~seq:t.cfg.iss
               ~ack:(tcb_get t Tcb.off_rcv_nxt)
               ~payload:None
           in
           tcb_set t Tcb.off_snd_nxt (t.cfg.iss + 1);
           t.unacked <-
             { end_seq = t.cfg.iss + 1; frame; sent_at = now_ns t;
               rexmitted = false }
             :: t.unacked;
           arm_rt_timer t;
           xmit t (Bytes.copy frame)
         end
       end
       else if st = Tcb.st_syn_rcvd then begin
         if flags.Packet.Tcp.ack && tcp.Packet.Tcp.ack = t.cfg.iss + 1 then begin
           tcb_set t Tcb.off_snd_una tcp.Packet.Tcp.ack;
           t.unacked <- [];
           cancel_rt_timer t;
           set_state t Tcb.st_established;
           (* The third ack may already carry data. *)
           if plen > 0 then handle_established t tcp ~addr ~plen
         end
       end
       else handle_closing t tcp ~plen
     end);
  tcb_set t Tcb.off_lib_busy 0

let on_segment t ~addr ~len =
  let module Trace = Ash_obs.Trace in
  let module Span = Ash_obs.Span in
  let corr = Trace.current_corr () in
  if Trace.enabled () then
    Span.begin_span ~corr ~off:(Kernel.span_off t.kernel) Trace.Proto;
  on_segment_body t ~addr ~len;
  if Trace.enabled () then
    Span.end_span ~corr ~off:(Kernel.span_off t.kernel) Trace.Proto

(* Library reaction to a fast-path commit: sync with the TCB on the
   next poll. *)
let on_fast_commit t =
  Tcp_fastpath.note_hit ();
  deliver_from_rcv_buf t;
  check_acks t

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create kernel cfg =
  let m = Machine.mem (Kernel.machine kernel) in
  let frame_len = cfg.mss + headers_len in
  let bind_vc =
    match cfg.medium with
    | Tcp_an2 { vc } -> vc
    | Tcp_ethernet -> -1 (* assigned below, after the handler exists *)
  in
  let t =
    {
      kernel;
      cfg;
      bind_vc;
      tcb = Memory.alloc m ~name:"tcp-tcb" Tcb.size;
      rcv_buf = Memory.alloc m ~name:"tcp-rcvbuf" (2 * cfg.window);
      ack_buf = Memory.alloc m ~name:"tcp-ackbuf" headers_len;
      snd_buf = Memory.alloc m ~name:"tcp-sndbuf" frame_len;
      staging = Memory.alloc m ~name:"tcp-staging" (max cfg.window 4096);
      pending_write = None;
      unacked = [];
      rt_timer = None;
      srtt = -1;
      rttvar = 0;
      rto_cur =
        (match cfg.rto with
         | Rto_fixed ns -> ns
         | Rto_adaptive { init_ns; _ } -> init_ns);
      backoff = 0;
      min_rtt = max_int;
      dup_acks = 0;
      rto_last = None;
      reader = None;
      on_connected = None;
      on_closed = None;
      on_peer_fin = None;
      delivered_off = 0;
      sent_during_delivery = false;
      ip_id = 1;
      s_tx = 0;
      s_rx = 0;
      s_rexmit = 0;
      s_rexmit_to = 0;
      s_fast_rexmit = 0;
      s_dup_acks = 0;
      s_spurious = 0;
      s_ooo = 0;
      s_bad_cksum = 0;
    }
  in
  (* Telemetry: per-endpoint retransmit rate and live RTO, named by
     kernel and local port (unique per endpoint); unregistered on
     [teardown] so churned connections do not accumulate series. *)
  (match Ash_obs.Timeseries.current () with
   | None -> ()
   | Some ts ->
     let pre =
       Printf.sprintf "tcp.%s.p%d." (Kernel.name kernel) cfg.local_port
     in
     Ash_obs.Timeseries.register_rate ts (pre ^ "retransmits") (fun () ->
         t.s_rexmit);
     Ash_obs.Timeseries.register_gauge ts (pre ^ "rto_ns") (fun () ->
         float_of_int (current_rto t)));
  (* Initialize the TCB. *)
  tcb_set t Tcb.off_state Tcb.st_closed;
  tcb_set t Tcb.off_snd_nxt cfg.iss;
  tcb_set t Tcb.off_snd_una cfg.iss;
  tcb_set t Tcb.off_rcv_nxt 0;
  tcb_set t Tcb.off_rcv_wnd cfg.window;
  tcb_set t Tcb.off_rcv_buf_addr t.rcv_buf.Memory.base;
  tcb_set t Tcb.off_rcv_buf_size t.rcv_buf.Memory.len;
  tcb_set t Tcb.off_rcv_off 0;
  tcb_set t Tcb.off_local_port cfg.local_port;
  tcb_set t Tcb.off_remote_port cfg.remote_port;
  tcb_set t Tcb.off_ack_buf_addr t.ack_buf.Memory.base;
  (* Pre-build the ack template the fast path patches (§V-B): constant
     IP header, constant ports/window; seq/ack filled per message. *)
  let template = Bytes.create headers_len in
  Packet.Ip.write template ~off:0
    {
      Packet.Ip.src = cfg.local_ip;
      dst = cfg.remote_ip;
      proto = Packet.Ip.proto_tcp;
      total_len = headers_len;
      ttl = 64;
      id = 0;
    };
  Packet.Tcp.write template ~off:Packet.ip_header_len
    {
      Packet.Tcp.src_port = cfg.local_port;
      dst_port = cfg.remote_port;
      seq = 0;
      ack = 0;
      flags = Packet.Tcp.flag_ack;
      window = cfg.window;
      checksum = 0;
    };
  Memory.blit_from_bytes m ~src:template ~src_off:0 ~dst:t.ack_buf.Memory.base
    ~len:headers_len;
  (* Demux binding + delivery mode. *)
  let delivery =
    match cfg.mode with
    | Library -> Kernel.Deliver_user
    | Fast_ash _ | Fast_upcall -> begin
        (* The fast path always moves data with a DILP transfer; with
           checksumming enabled the pipe list also folds the Internet
           checksum into the same traversal (§V-B). *)
        let pl = Pipe.Pipelist.create () in
        let acc =
          if cfg.checksum then snd (Pipelib.cksum32 pl)
          else begin
            ignore (Pipelib.identity pl);
            0
          end
        in
        let compiled = Dilp.compile pl Dilp.Write in
        let dilp_id = Kernel.register_dilp kernel compiled in
        let prog =
          Tcp_fastpath.program
            {
              Tcp_fastpath.tcb_addr = t.tcb.Memory.base;
              checksum = cfg.checksum;
              dilp_id;
              cksum_acc_reg = acc;
            }
        in
        let sandbox =
          match cfg.mode with
          | Fast_ash { sandbox } -> sandbox
          | Fast_upcall | Library -> false
        in
        match Kernel.download_ash kernel ~sandbox prog with
        | Error e ->
          failwith
            (Format.asprintf "Tcp: fast path rejected: %a" Ash_vm.Verify.pp_error
               e)
        | Ok id -> begin
            match cfg.mode with
            | Fast_upcall -> Kernel.Deliver_upcall id
            | Fast_ash _ | Library -> Kernel.Deliver_ash id
          end
      end
  in
  (match cfg.medium with
   | Tcp_an2 { vc } ->
     Kernel.bind_vc kernel ~vc delivery;
     for i = 1 to cfg.rx_buffers do
       let r = Memory.alloc m ~name:(Printf.sprintf "tcp-rx-%d" i) frame_len in
       Kernel.post_receive_buffer kernel ~vc ~addr:r.Memory.base
         ~len:r.Memory.len
     done
   | Tcp_ethernet ->
     (* Demux by protocol and ports through a compiled DPF filter, the
        Ethernet equivalent of the AN2's VC demux. *)
     let filter =
       [
         Dpf.atom ~offset:9 ~width:1 Packet.Ip.proto_tcp;
         Dpf.atom ~offset:(Packet.ip_header_len + Packet.Tcp.off_src_port)
           ~width:2 cfg.remote_port;
         Dpf.atom ~offset:(Packet.ip_header_len + Packet.Tcp.off_dst_port)
           ~width:2 cfg.local_port;
       ]
     in
     t.bind_vc <- Kernel.bind_eth_filter kernel filter ~compiled:true delivery);
  Kernel.set_auto_repost kernel ~vc:t.bind_vc true;
  Kernel.set_user_handler kernel ~vc:t.bind_vc (fun ~addr ~len ->
      on_segment t ~addr ~len);
  (match cfg.mode with
   | Library -> ()
   | Fast_ash _ | Fast_upcall ->
     Kernel.set_commit_hook kernel ~vc:t.bind_vc (fun () -> on_fast_commit t));
  t

(* ------------------------------------------------------------------ *)
(* Public operations                                                   *)
(* ------------------------------------------------------------------ *)

let connect t ~on_connected =
  if state t <> Tcb.st_closed then invalid_arg "Tcp.connect: not closed";
  t.on_connected <- Some on_connected;
  set_state t Tcb.st_syn_sent;
  Kernel.app_compute t.kernel Protocost.tcp_send_overhead_ns;
  let frame =
    build_segment t ~flags:Packet.Tcp.flag_syn ~seq:t.cfg.iss ~ack:0
      ~payload:None
  in
  tcb_set t Tcb.off_snd_nxt (t.cfg.iss + 1);
  t.unacked <-
    { end_seq = t.cfg.iss + 1; frame; sent_at = now_ns t; rexmitted = false }
    :: t.unacked;
  arm_rt_timer t;
  xmit t (Bytes.copy frame)

let listen t =
  if state t <> Tcb.st_closed then invalid_arg "Tcp.listen: not closed";
  set_state t Tcb.st_listen

let write t ~addr ~len ~on_complete =
  if state t <> Tcb.st_established then
    invalid_arg "Tcp.write: not established";
  if t.pending_write <> None then
    invalid_arg "Tcp.write: write already in flight";
  if len <= 0 then invalid_arg "Tcp.write: empty";
  let end_seq = tcb_get t Tcb.off_snd_nxt + len in
  t.pending_write <-
    Some { src_addr = addr; src_len = len; sent = 0; end_seq; on_complete };
  pump t

let write_string t s ~on_complete =
  let len = String.length s in
  if len > t.staging.Memory.len then invalid_arg "Tcp.write_string: too long";
  Memory.blit_from_bytes (mem t) ~src:(Bytes.of_string s) ~src_off:0
    ~dst:t.staging.Memory.base ~len;
  write t ~addr:t.staging.Memory.base ~len ~on_complete

let set_reader t f = t.reader <- Some f

let close t ~on_closed =
  let st = state t in
  if st <> Tcb.st_established && st <> Tcb.st_close_wait then
    invalid_arg "Tcp.close: bad state";
  t.on_closed <- Some on_closed;
  Kernel.app_compute t.kernel Protocost.tcp_send_overhead_ns;
  let seq = tcb_get t Tcb.off_snd_nxt in
  let frame =
    build_segment t ~flags:Packet.Tcp.flag_fin_ack ~seq
      ~ack:(tcb_get t Tcb.off_rcv_nxt)
      ~payload:None
  in
  tcb_set t Tcb.off_snd_nxt (seq + 1);
  t.unacked <-
    { end_seq = seq + 1; frame; sent_at = now_ns t; rexmitted = false }
    :: t.unacked;
  arm_rt_timer t;
  set_state t
    (if st = Tcb.st_established then Tcb.st_fin_wait_1 else Tcb.st_last_ack);
  xmit t (Bytes.copy frame)

let set_on_peer_fin t f = t.on_peer_fin <- Some f

(* Release everything the endpoint pinned: the retransmission timer,
   the demux binding (so the filter leaves the merged trie / the VC
   closes on the board) and the endpoint's memory regions. The churn
   suite asserts all three return to baseline. [t] must not be used
   afterwards; any late segment for the old binding drops as a DPF
   miss, exactly like a segment for a port nobody listens on. *)
let teardown t =
  (match Ash_obs.Timeseries.current () with
   | None -> ()
   | Some ts ->
     let pre =
       Printf.sprintf "tcp.%s.p%d." (Kernel.name t.kernel) t.cfg.local_port
     in
     Ash_obs.Timeseries.unregister ts (pre ^ "retransmits");
     Ash_obs.Timeseries.unregister ts (pre ^ "rto_ns"));
  cancel_rt_timer t;
  t.pending_write <- None;
  t.unacked <- [];
  t.reader <- None;
  t.on_connected <- None;
  t.on_closed <- None;
  t.on_peer_fin <- None;
  (match t.cfg.medium with
   | Tcp_ethernet -> Kernel.unbind_eth_filter t.kernel ~vc:t.bind_vc
   | Tcp_an2 { vc } -> Kernel.unbind_vc t.kernel ~vc);
  let m = mem t in
  List.iter (Memory.free m)
    [ t.staging; t.snd_buf; t.ack_buf; t.rcv_buf; t.tcb ]

let rcv_buffer_region t = t.rcv_buf

let stats t =
  let ks = Kernel.stats t.kernel in
  {
    segments_sent = t.s_tx;
    segments_received = t.s_rx;
    fast_path_data = tcb_get t Tcb.off_fast_data;
    fast_path_acks = tcb_get t Tcb.off_fast_acks;
    fast_path_aborts = ks.Kernel.ash_aborted_voluntary;
    retransmits = t.s_rexmit;
    timeout_retransmits = t.s_rexmit_to;
    fast_retransmits = t.s_fast_rexmit;
    dup_acks_received = t.s_dup_acks;
    spurious_timeouts = t.s_spurious;
    out_of_order = t.s_ooo;
    bad_checksums = t.s_bad_cksum;
  }

let current_rto_ns = current_rto

let srtt_ns t = if t.srtt < 0 then None else Some t.srtt

let rt_timer_armed t = t.rt_timer <> None
