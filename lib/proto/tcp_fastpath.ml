module Isa = Ash_vm.Isa
module Builder = Ash_vm.Builder

type config = {
  tcb_addr : int;
  checksum : bool;
  dilp_id : int;
  cksum_acc_reg : Ash_vm.Isa.reg;
}

(* Frame layout offsets: IP header at 0, TCP header at 20, payload at 40. *)
let tcp_off = Packet.ip_header_len
let payload_off = tcp_off + Packet.tcp_header_len

let note_hit () =
  if Ash_obs.Trace.enabled () then Ash_obs.Trace.emit Ash_obs.Trace.Tcp_fast_hit

let note_miss () =
  if Ash_obs.Trace.enabled () then
    Ash_obs.Trace.emit Ash_obs.Trace.Tcp_fast_miss

let program cfg =
  let b = Builder.create ~name:"tcp-fastpath" () in
  let abort_l = Builder.fresh_label b in
  let no_una = Builder.fresh_label b in
  let has_data = Builder.fresh_label b in
  let tcb = Builder.temp b
  and v = Builder.temp b
  and w = Builder.temp b
  and plen = Builder.temp b
  and tmp = Builder.temp b
  and dst = Builder.temp b in
  let ld_tcb r off = Builder.emit b (Isa.Ld32 (r, tcb, off)) in
  let st_tcb r off = Builder.emit b (Isa.St32 (r, tcb, off)) in
  Builder.li b tcb cfg.tcb_addr;
  (* -- Part one: protocol preamble (§II-A), the fast-path constraints. *)
  Builder.li b v (payload_off);
  Builder.bltu b Isa.reg_msg_len v abort_l;
  ld_tcb v Tcb.off_lib_busy;
  Builder.bne b v Isa.reg_zero abort_l;
  ld_tcb v Tcb.off_behind;
  Builder.bne b v Isa.reg_zero abort_l;
  ld_tcb v Tcb.off_state;
  Builder.li b w Tcb.st_established;
  Builder.bne b v w abort_l;
  (* Ports: the paper's AN2 TCP demuxes on VC + ports. *)
  Builder.emit b (Isa.Ld16 (v, Isa.reg_msg_addr, tcp_off + Packet.Tcp.off_src_port));
  ld_tcb w Tcb.off_remote_port;
  Builder.bne b v w abort_l;
  Builder.emit b (Isa.Ld16 (v, Isa.reg_msg_addr, tcp_off + Packet.Tcp.off_dst_port));
  ld_tcb w Tcb.off_local_port;
  Builder.bne b v w abort_l;
  (* Header prediction: plain ACK flags (PSH ignored), expected seq. *)
  Builder.emit b
    (Isa.Ld16 (v, Isa.reg_msg_addr, tcp_off + Packet.Tcp.off_dataoff_flags));
  Builder.emit b (Isa.Andi (v, v, 0xfff7));
  Builder.li b w 0x5010;
  Builder.bne b v w abort_l;
  Builder.emit b (Isa.Ld32 (v, Isa.reg_msg_addr, tcp_off + Packet.Tcp.off_seq));
  ld_tcb w Tcb.off_rcv_nxt;
  Builder.bne b v w abort_l;
  (* Acknowledgment processing: advance snd_una monotonically. *)
  Builder.emit b (Isa.Ld32 (v, Isa.reg_msg_addr, tcp_off + Packet.Tcp.off_ack));
  ld_tcb w Tcb.off_snd_nxt;
  Builder.bltu b w v abort_l; (* acking data we never sent *)
  ld_tcb w Tcb.off_snd_una;
  Builder.bgeu b w v no_una;
  st_tcb v Tcb.off_snd_una;
  Builder.place b no_una;
  Builder.emit b (Isa.Addi (plen, Isa.reg_msg_len, -payload_off));
  Builder.bne b plen Isa.reg_zero has_data;
  (* Pure acknowledgment: absorbed entirely in the kernel. *)
  ld_tcb v Tcb.off_fast_acks;
  Builder.emit b (Isa.Addi (v, v, 1));
  st_tcb v Tcb.off_fast_acks;
  Builder.commit b;
  Builder.place b has_data;
  (* -- Part two: the data manipulation, via dynamic ILP (§V-B). *)
  Builder.emit b (Isa.Andi (v, plen, 3));
  Builder.bne b v Isa.reg_zero abort_l; (* odd tail: library's job *)
  ld_tcb v Tcb.off_rcv_off;
  Builder.emit b (Isa.Add (w, v, plen));
  ld_tcb tmp Tcb.off_rcv_buf_size;
  Builder.bltu b tmp w abort_l; (* would overrun: library wraps *)
  ld_tcb dst Tcb.off_rcv_buf_addr;
  Builder.emit b (Isa.Add (dst, dst, v));
  if cfg.checksum then Builder.li b cfg.cksum_acc_reg 0;
  Builder.li b Isa.reg_arg0 cfg.dilp_id;
  Builder.li b Isa.reg_arg1 payload_off;
  Builder.emit b (Isa.Mov (Isa.reg_arg2, dst));
  Builder.emit b (Isa.Mov (Isa.reg_arg3, plen));
  Builder.call b Isa.K_dilp;
  Builder.beq b Isa.reg_arg0 Isa.reg_zero abort_l;
  if cfg.checksum then begin
    (* Fold the 32-bit one's-complement sum to 16 bits and compare with
       the segment's end-to-end checksum field. *)
    Builder.emit b (Isa.Srl (v, cfg.cksum_acc_reg, 16));
    Builder.emit b (Isa.Andi (w, cfg.cksum_acc_reg, 0xffff));
    Builder.emit b (Isa.Add (v, v, w));
    Builder.emit b (Isa.Srl (w, v, 16));
    Builder.emit b (Isa.Andi (v, v, 0xffff));
    Builder.emit b (Isa.Add (v, v, w));
    Builder.emit b
      (Isa.Ld16 (w, Isa.reg_msg_addr, tcp_off + Packet.Tcp.off_checksum));
    Builder.bne b v w abort_l
  end;
  (* -- Part three: commit code — update the TCB and reply (§II-A). *)
  ld_tcb v Tcb.off_rcv_nxt;
  Builder.emit b (Isa.Add (v, v, plen));
  st_tcb v Tcb.off_rcv_nxt;
  ld_tcb w Tcb.off_rcv_off;
  Builder.emit b (Isa.Add (w, w, plen));
  st_tcb w Tcb.off_rcv_off;
  ld_tcb w Tcb.off_fast_data;
  Builder.emit b (Isa.Addi (w, w, 1));
  st_tcb w Tcb.off_fast_data;
  (* ACK from the library's pre-built template: patch seq/ack, send. *)
  ld_tcb tmp Tcb.off_ack_buf_addr;
  ld_tcb w Tcb.off_snd_nxt;
  Builder.emit b (Isa.St32 (w, tmp, tcp_off + Packet.Tcp.off_seq));
  Builder.emit b (Isa.St32 (v, tmp, tcp_off + Packet.Tcp.off_ack));
  Builder.emit b (Isa.Mov (Isa.reg_arg0, tmp));
  Builder.li b Isa.reg_arg1 payload_off;
  Builder.call b Isa.K_send;
  Builder.commit b;
  Builder.place b abort_l;
  Builder.abort b;
  Builder.assemble b
