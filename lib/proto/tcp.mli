(** The user-level TCP library (§IV-D).

    "A library-based implementation of RFC 793 ... not fully TCP
    compliant (it lacks support for fluent internetworking such as fast
    retransmit, fast recovery, and good buffering strategies)". What is
    implemented, matching the paper's statements about its TCP:

    - three-way handshake, ESTABLISHED data transfer, FIN teardown;
    - MSS segmentation and a fixed advertised window (8 KB in the
      experiments);
    - synchronous [write] ("write waits for an acknowledgment before
      returning") with go-back-N timeout retransmission;
    - header prediction on the receive path;
    - optional end-to-end payload checksumming, in-place or copying
      delivery (Table II's configurations);
    - a common-case fast path that can run as an ASH or as an upcall
      (Table VI's configurations), falling back to this library when its
      constraints fail;
    - acks are piggybacked on data written from inside the reader
      callback; a pure ack is emitted otherwise (library mode). The
      ASH/upcall fast path acks data segments immediately.

    The API is continuation-passing because the caller is inside a
    discrete-event simulation: [write] returns immediately and invokes
    [on_complete] at the simulated time the synchronous call would have
    returned. *)

type mode =
  | Library                       (** Table VI "user-level" columns. *)
  | Fast_ash of { sandbox : bool }(** Sandboxed / unsafe ASH columns. *)
  | Fast_upcall                   (** Upcall column. *)

type medium =
  | Tcp_an2 of { vc : int }  (** VC demux; ports checked in software. *)
  | Tcp_ethernet             (** Compiled DPF filter on proto + ports. *)

(** Retransmission-timeout policy. *)
type rto_policy =
  | Rto_fixed of int
      (** The historical crude behavior: a constant timeout, no
          backoff, no adaptation — kept as the measurable baseline. *)
  | Rto_adaptive of { init_ns : int; min_ns : int; max_ns : int }
      (** Jacobson SRTT/RTTVAR estimation with Karn's rule and
          exponential backoff; the effective RTO is clamped to
          [min_ns, max_ns] and starts at [init_ns] before the first
          sample. *)

val default_rto : rto_policy
(** Adaptive: init 20 ms (the old fixed constant), floor 1 ms,
    ceiling 320 ms. *)

type config = {
  medium : medium;
  local_ip : int;
  local_port : int;
  remote_ip : int;
  remote_port : int;
  mss : int;            (** 3072 on AN2; 536 for the small-MSS run. *)
  window : int;         (** 8192 in the paper's experiments. *)
  checksum : bool;
  in_place : bool;      (** Library-mode delivery without the copy. *)
  mode : mode;
  rx_buffers : int;
  iss : int;            (** Initial send sequence number. *)
  rto : rto_policy;
  fast_retransmit : bool;
      (** Retransmit after [dup_ack_threshold] duplicate acks instead
          of waiting for the timer. *)
  dup_ack_threshold : int;  (** Classically 3. *)
}

val default_config : config
(** AN2 VC 6, MSS 3072, window 8192, checksumming on, copy-mode,
    library delivery. Give the two endpoints distinct ports/iss via
    record update. For [Tcp_ethernet], also lower [mss] to 1460. *)

type t

type stats = {
  segments_sent : int;
  segments_received : int;     (** Processed by the library path. *)
  fast_path_data : int;        (** Data segments the handler consumed. *)
  fast_path_acks : int;        (** Pure acks the handler consumed. *)
  fast_path_aborts : int;      (** Handler fell back to the library. *)
  retransmits : int;           (** Segments resent (any trigger). *)
  timeout_retransmits : int;   (** Retransmission-timer firings. *)
  fast_retransmits : int;      (** Dup-ack-triggered go-back-N resends. *)
  dup_acks_received : int;     (** Pure acks that moved nothing. *)
  spurious_timeouts : int;
      (** RTO firings later contradicted by an ack that arrived sooner
          after the resend than the fastest observed round trip. *)
  out_of_order : int;          (** Segments past rcv_nxt (dup-acked). *)
  bad_checksums : int;
}

val create : Ash_kern.Kernel.t -> config -> t
(** Allocates the TCB, receive buffers and ack template; binds the VC
    with the configured delivery mode; downloads the fast-path handler
    when the mode calls for one. One connection per VC. *)

val connect : t -> on_connected:(unit -> unit) -> unit
(** Active open. *)

val listen : t -> unit
(** Passive open. *)

val established : t -> bool

val write : t -> addr:int -> len:int -> on_complete:(unit -> unit) -> unit
(** Synchronous send of application memory: segments, transmits within
    the window, and invokes [on_complete] once everything is
    acknowledged. Raises [Invalid_argument] if a write is already in
    flight or the connection is not established. *)

val write_string : t -> string -> on_complete:(unit -> unit) -> unit

val set_reader : t -> (addr:int -> len:int -> unit) -> unit
(** In-order data delivery. [addr]/[len] are valid for the duration of
    the callback; data written with {!write} from inside the callback
    piggybacks the ack. *)

val close : t -> on_closed:(unit -> unit) -> unit
(** Send FIN; [on_closed] fires when the teardown completes. A passive
    closer stuck in LAST_ACK (its final ack lost, the peer already torn
    down) gives up after a bounded FIN retry run — the R2 limit of real
    stacks — and fires [on_closed] then, so churn never wedges. *)

val set_on_peer_fin : t -> (unit -> unit) -> unit
(** Passive-close notification: fires once when the peer's FIN moves
    the connection to CLOSE_WAIT. A churn server uses this to decide
    when to {!close} (and then {!teardown}) its side. *)

val teardown : t -> unit
(** Release every demux and memory resource the endpoint holds: cancel
    the retransmission timer, remove the demux binding (Ethernet filter
    out of the merged trie, or AN2 VC closed on the board) and free the
    endpoint's regions (TCB, buffers). Call after the close handshake —
    or at any point to abandon the connection; a late segment for the
    old binding drops as a demux miss. The endpoint must not be used
    afterwards (its memory faults on access). AN2 receive buffers
    posted at create are forgotten by the board but their backing
    regions stay allocated; Ethernet endpoints (which share the
    kernel's pktbuf pool) reclaim fully. *)

val state_name : t -> string
val stats : t -> stats

val current_rto_ns : t -> int
(** The effective retransmission timeout right now (backoff applied,
    clamped). Constant under [Rto_fixed]. *)

val srtt_ns : t -> int option
(** The smoothed round-trip estimate ([None] before the first valid
    sample — Karn's rule can delay it indefinitely under heavy loss). *)

val rt_timer_armed : t -> bool
(** Whether the retransmission timer is pending (unit tests for the
    arm/cancel/re-arm lifecycle). *)

val rcv_buffer_region : t -> Ash_sim.Memory.region
(** The connection's receive buffer, exposed for instrumentation and
    fault-injection tests (e.g. marking it non-resident to force the
    fast-path handler's involuntary abort, §III-A). *)
