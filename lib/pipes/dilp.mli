(** The dynamic ILP compiler (§II-B, §III-C).

    Fuses a {!Pipe.Pipelist.t} into one specialized data-transfer loop —
    a VM program that loads each 32-bit word of the source once, threads
    it through every pipe's inlined body (converting between gauges where
    pipes disagree), and stores the result once. The emitted loop is
    unrolled by four words, mirroring the paper's claim that generated
    copy loops are "very close in efficiency to carefully hand-optimized
    integrated loops" (Table IV).

    Entry convention of the compiled program:
    [r1] = source address, [r2] = destination address (ignored in [Sink]
    mode), [r3] = length in bytes (must be a multiple of four — the
    paper's Fig. 2 makes the same assumption). Persistent registers are
    seeded via [init] (export) and read back from the returned register
    file (import). *)

type mode =
  | Write  (** Copy through the pipes ([PIPE_WRITE]). *)
  | Sink   (** Run the pipes over the data without storing — used by
               in-place delivery, where data is consumed where it landed
               but must still be checksummed. *)

(** Source memory layout. "Different loops may be generated for
    different network interfaces; for example, our Ethernet DMA engine
    stripes an N-byte contiguous packet into a 2N-byte buffer,
    alternating 16 bytes of data and 16 bytes of padding, whereas the
    AN2 DMA engine copies the data contiguously" (§III-C). A [Striped]
    transfer reads around the padding in the same single pass, so no
    separate de-striping copy is needed. *)
type layout =
  | Contiguous
  | Striped of { data : int; pad : int }
      (** [data] bytes of payload followed by [pad] bytes of padding,
          repeating. [data] must be a positive multiple of 4. *)

val eth_striped : layout
(** The Ethernet device's 16-data/16-pad layout. *)

type compiled = private {
  program : Ash_vm.Program.t;
  exec : Ash_vm.Exec.prepared;
  (** The program prepared for backend execution (closure artifact
      generated lazily on first compiled-backend run). *)
  mode : mode;
  layout : layout;
  pipes : Pipe.t list;
  persistent : Ash_vm.Isa.reg list;
}

val compile : ?layout:layout -> Pipe.Pipelist.t -> mode -> compiled
(** Fuse the pipe list into a transfer loop for the given source
    [layout] (default [Contiguous]). Raises [Failure] if a pipe body
    runs out of scratch registers or emits control flow (pipe bodies
    must be straight-line), or [Invalid_argument] on a bad layout. *)

val execute :
  ?backend:Ash_vm.Exec.backend ->
  ?init:(Ash_vm.Isa.reg * int) list ->
  Ash_sim.Machine.t ->
  compiled ->
  src:int ->
  dst:int ->
  len:int ->
  Ash_vm.Interp.result
(** Run the fused loop over [len] {e payload} bytes (the striped source
    region is correspondingly longer), charging the machine, under
    [backend] (default {!Ash_vm.Exec.default}). Raises
    [Invalid_argument] if [len] is negative, not a multiple of four, or
    (striped layouts) not a multiple of the stripe's data size. *)

val execute_exn :
  ?backend:Ash_vm.Exec.backend ->
  ?init:(Ash_vm.Isa.reg * int) list ->
  Ash_sim.Machine.t ->
  compiled ->
  src:int ->
  dst:int ->
  len:int ->
  int array
(** Like {!execute} but returns just the final register file, raising
    [Failure] if the loop did not complete cleanly. *)
