type mode = Write | Sink

type layout = Contiguous | Striped of { data : int; pad : int }

let eth_striped = Striped { data = 16; pad = 16 }

type compiled = {
  program : Ash_vm.Program.t;
  exec : Ash_vm.Exec.prepared;
  mode : mode;
  layout : layout;
  pipes : Pipe.t list;
  persistent : Ash_vm.Isa.reg list;
}

(* Fixed register plan for the generated loop:
   r1 src, r2 dst, r3 len, r4 end, r5 unrolled-loop limit,
   r10-r15 gauge-conversion/pipe scratch, r30 the data register,
   r16-r27 pipe persistent registers. *)
let reg_src = 1
let reg_dst = 2
let reg_len = 3
let reg_end = 4
let reg_limit = 5
let reg_data = Ash_vm.Isa.reg_pipe_input
let scratch = [ 10; 11; 12; 13; 14; 15 ]

let unroll = 4

let apply_pipe b (p : Pipe.t) =
  let pool = ref scratch in
  let take () =
    match !pool with
    | [] -> failwith ("Dilp: pipe " ^ p.Pipe.name ^ " out of scratch registers")
    | r :: rest ->
      pool := rest;
      r
  in
  let emit insn =
    match Ash_vm.Isa.branch_target insn, insn with
    | Some _, _ | None, Ash_vm.Isa.Jr _ ->
      failwith ("Dilp: pipe " ^ p.Pipe.name ^ " bodies must be straight-line")
    | None, _ -> Ash_vm.Builder.emit b insn
  in
  let body_on data =
    let saved = !pool in
    p.Pipe.body { Pipe.emit; data; temp = take };
    pool := saved
  in
  match p.Pipe.gauge with
  | Pipe.G32 -> body_on reg_data
  | Pipe.G16 ->
    (* Split the 32-bit unit into two 16-bit lanes (big-endian order),
       stream each through the pipe, and aggregate back into a single
       register (§II-B gauge conversion). *)
    let hi = take () and lo = take () in
    Ash_vm.Builder.emit b (Ash_vm.Isa.Srl (hi, reg_data, 16));
    body_on hi;
    Ash_vm.Builder.emit b (Ash_vm.Isa.Andi (lo, reg_data, 0xffff));
    body_on lo;
    Ash_vm.Builder.emit b (Ash_vm.Isa.Sll (reg_data, hi, 16));
    Ash_vm.Builder.emit b (Ash_vm.Isa.Or_ (reg_data, reg_data, lo))
  | Pipe.G8 ->
    let lanes = [ take (); take (); take (); take () ] in
    List.iteri
      (fun i lane ->
         let shift = 24 - (8 * i) in
         if shift = 0 then Ash_vm.Builder.emit b (Ash_vm.Isa.Andi (lane, reg_data, 0xff))
         else begin
           Ash_vm.Builder.emit b (Ash_vm.Isa.Srl (lane, reg_data, shift));
           Ash_vm.Builder.emit b (Ash_vm.Isa.Andi (lane, lane, 0xff))
         end;
         body_on lane)
      lanes;
    (match lanes with
     | [ l0; l1; l2; l3 ] ->
       Ash_vm.Builder.emit b (Ash_vm.Isa.Sll (reg_data, l0, 24));
       Ash_vm.Builder.emit b (Ash_vm.Isa.Sll (l1, l1, 16));
       Ash_vm.Builder.emit b (Ash_vm.Isa.Or_ (reg_data, reg_data, l1));
       Ash_vm.Builder.emit b (Ash_vm.Isa.Sll (l2, l2, 8));
       Ash_vm.Builder.emit b (Ash_vm.Isa.Or_ (reg_data, reg_data, l2));
       Ash_vm.Builder.emit b (Ash_vm.Isa.Or_ (reg_data, reg_data, l3))
     | _ -> assert false)

let compile_contiguous ~name pipes mode =
  let b = Ash_vm.Builder.create ~name () in
  let word k =
    Ash_vm.Builder.emit b (Ash_vm.Isa.Ld32 (reg_data, reg_src, 4 * k));
    List.iter (apply_pipe b) pipes;
    match mode with
    | Write -> Ash_vm.Builder.emit b (Ash_vm.Isa.St32 (reg_data, reg_dst, 4 * k))
    | Sink -> ()
  in
  Ash_vm.Builder.emit b (Ash_vm.Isa.Add (reg_end, reg_src, reg_len));
  Ash_vm.Builder.emit b (Ash_vm.Isa.Addi (reg_limit, reg_end, -(4 * unroll) + 1));
  let tail_l = Ash_vm.Builder.fresh_label b in
  let done_l = Ash_vm.Builder.fresh_label b in
  let loop4 = Ash_vm.Builder.here b in
  Ash_vm.Builder.bgeu b reg_src reg_limit tail_l;
  for k = 0 to unroll - 1 do
    word k
  done;
  Ash_vm.Builder.emit b (Ash_vm.Isa.Addi (reg_src, reg_src, 4 * unroll));
  (match mode with
   | Write -> Ash_vm.Builder.emit b (Ash_vm.Isa.Addi (reg_dst, reg_dst, 4 * unroll))
   | Sink -> ());
  Ash_vm.Builder.jmp b loop4;
  Ash_vm.Builder.place b tail_l;
  Ash_vm.Builder.bgeu b reg_src reg_end done_l;
  word 0;
  Ash_vm.Builder.emit b (Ash_vm.Isa.Addi (reg_src, reg_src, 4));
  (match mode with
   | Write -> Ash_vm.Builder.emit b (Ash_vm.Isa.Addi (reg_dst, reg_dst, 4))
   | Sink -> ());
  Ash_vm.Builder.jmp b tail_l;
  Ash_vm.Builder.place b done_l;
  Ash_vm.Builder.halt b;
  Ash_vm.Builder.assemble b

(* Striped back end: process [data] payload bytes, skip [pad], repeat.
   The loop walks whole stripes; a trailing partial stripe is handled by
   a word-tail loop (the last stripe of a packet may be short). *)
let compile_striped ~name pipes mode ~data ~pad =
  let b = Ash_vm.Builder.create ~name () in
  let words_per_stripe = data / 4 in
  let reg_chunks = 6 and reg_remw = 7 in
  let word k =
    Ash_vm.Builder.emit b (Ash_vm.Isa.Ld32 (reg_data, reg_src, 4 * k));
    List.iter (apply_pipe b) pipes;
    match mode with
    | Write -> Ash_vm.Builder.emit b (Ash_vm.Isa.St32 (reg_data, reg_dst, 4 * k))
    | Sink -> ()
  in
  (* r6 = full stripes, r7 = words in the trailing partial stripe. *)
  let log2_data =
    let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
    go 0 data
  in
  Ash_vm.Builder.emit b (Ash_vm.Isa.Srl (reg_chunks, reg_len, log2_data));
  Ash_vm.Builder.emit b (Ash_vm.Isa.Andi (reg_remw, reg_len, data - 1));
  Ash_vm.Builder.emit b (Ash_vm.Isa.Srl (reg_remw, reg_remw, 2));
  let tail_l = Ash_vm.Builder.fresh_label b in
  let done_l = Ash_vm.Builder.fresh_label b in
  let loop = Ash_vm.Builder.here b in
  Ash_vm.Builder.beq b reg_chunks Ash_vm.Isa.reg_zero tail_l;
  for k = 0 to words_per_stripe - 1 do
    word k
  done;
  Ash_vm.Builder.emit b (Ash_vm.Isa.Addi (reg_src, reg_src, data + pad));
  (match mode with
   | Write -> Ash_vm.Builder.emit b (Ash_vm.Isa.Addi (reg_dst, reg_dst, data))
   | Sink -> ());
  Ash_vm.Builder.emit b (Ash_vm.Isa.Addi (reg_chunks, reg_chunks, -1));
  Ash_vm.Builder.jmp b loop;
  Ash_vm.Builder.place b tail_l;
  Ash_vm.Builder.beq b reg_remw Ash_vm.Isa.reg_zero done_l;
  word 0;
  Ash_vm.Builder.emit b (Ash_vm.Isa.Addi (reg_src, reg_src, 4));
  (match mode with
   | Write -> Ash_vm.Builder.emit b (Ash_vm.Isa.Addi (reg_dst, reg_dst, 4))
   | Sink -> ());
  Ash_vm.Builder.emit b (Ash_vm.Isa.Addi (reg_remw, reg_remw, -1));
  Ash_vm.Builder.jmp b tail_l;
  Ash_vm.Builder.place b done_l;
  Ash_vm.Builder.halt b;
  Ash_vm.Builder.assemble b

let is_pow2 n = n > 0 && n land (n - 1) = 0

let compile ?(layout = Contiguous) pl mode =
  let pipes = Pipe.Pipelist.pipes pl in
  let name =
    "dilp:"
    ^ String.concat "+" (List.map (fun p -> p.Pipe.name) pipes)
    ^ (match mode with Write -> ":write" | Sink -> ":sink")
    ^ (match layout with
       | Contiguous -> ""
       | Striped { data; pad } -> Printf.sprintf ":striped%d/%d" data pad)
  in
  let program =
    match layout with
    | Contiguous -> compile_contiguous ~name pipes mode
    | Striped { data; pad } ->
      if data <= 0 || data land 3 <> 0 || pad < 0 then
        invalid_arg "Dilp.compile: bad stripe geometry";
      if not (is_pow2 data) then
        invalid_arg "Dilp.compile: stripe data size must be a power of two";
      compile_striped ~name pipes mode ~data ~pad
  in
  if Ash_obs.Trace.enabled () then
    Ash_obs.Trace.emit
      (Ash_obs.Trace.Dilp_compile
         { name; insns = Array.length program.Ash_vm.Program.code });
  {
    program;
    exec = Ash_vm.Exec.prepare program;
    mode;
    layout;
    pipes;
    persistent = Pipe.Pipelist.persistent_regs pl;
  }

let execute ?backend ?(init = []) machine t ~src ~dst ~len =
  if len < 0 || len land 3 <> 0 then
    invalid_arg "Dilp.execute: length must be a non-negative multiple of 4";
  if Ash_obs.Trace.enabled () then
    Ash_obs.Trace.emit
      (Ash_obs.Trace.Dilp_run
         { name = t.program.Ash_vm.Program.name; len });
  let env =
    {
      Ash_vm.Interp.machine;
      msg_addr = src;
      msg_len = len;
      allowed_calls = [];
      dilp = (fun ~id:_ ~src:_ ~dst:_ ~len:_ ~regs:_ -> false);
      send = ignore;
      gas_cycles = Ash_vm.Interp.default_gas;
    }
  in
  let regs_init =
    (reg_src, src) :: (reg_dst, dst) :: (reg_len, len) :: init
  in
  Ash_vm.Exec.run ?backend env ~regs_init t.exec

let execute_exn ?backend ?init machine t ~src ~dst ~len =
  let r = execute ?backend ?init machine t ~src ~dst ~len in
  match r.Ash_vm.Interp.outcome with
  | Ash_vm.Interp.Returned -> r.Ash_vm.Interp.regs
  | Ash_vm.Interp.Committed | Ash_vm.Interp.Aborted ->
    failwith "Dilp.execute_exn: unexpected handler termination"
  | Ash_vm.Interp.Killed v ->
    failwith
      (Format.asprintf "Dilp.execute_exn: killed (%a)" Ash_vm.Isa.pp_violation v)
