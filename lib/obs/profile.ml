(* Fold a recorded trace into the paper's attribution tables: where
   each message spent its time (Table 2/6-style stage rows) and what
   each downloaded handler cost (dispatch/commit counts, cycles split
   into sandbox checks vs. payload vs. pipe words). *)

type stage_row = {
  stage : Trace.stage;
  spans : int;  (* intervals observed *)
  messages : int;  (* messages that passed this stage *)
  p50_ns : float;
  p99_ns : float;
  mean_ns : float;
  total_ns : int;
  total_cycles : int;
  dominant_in : int;  (* messages where this stage dominates *)
}

type message = {
  corr : int;
  e2e_ns : int;  (* first span open to last span close *)
  covered_ns : int;  (* union of span intervals *)
  dominant : Trace.stage option;
  stage_ns : (Trace.stage * int) list;
}

type ash_row = {
  id : int;
  downloads : int;
  cache_hits : int;
  dispatches : int;
  commits : int;
  aborts : int;
  kills : int;
  vm_runs : int;
  vm_cycles : int;
  vm_insns : int;
  vm_check_insns : int;
  sandbox_cycles_est : int;
  payload_cycles_est : int;
  pipe_runs : int;
  pipe_bytes : int;
  pipe_cycles : int;
}

type t = {
  messages : message list;
  stages : stage_row list;
  ashes : ash_row list;
  spans : Span.interval list;
  unclosed : (int * Trace.stage * int) list;
}

(* -- per-message latency ------------------------------------------- *)

(* Length of the union of [(t0, t1)] intervals: sort by start and
   sweep, so nested and overlapping stage spans are not double
   counted. *)
let union_length intervals =
  let sorted =
    List.sort
      (fun (a : Span.interval) b -> compare (a.t0, a.t1) (b.t0, b.t1))
      intervals
  in
  let covered, lo, hi =
    List.fold_left
      (fun (acc, lo, hi) (i : Span.interval) ->
        if i.t0 > hi then (acc + (hi - lo), i.t0, i.t1)
        else (acc, lo, max hi i.t1))
      (0, 0, 0)
      sorted
  in
  match sorted with [] -> 0 | _ -> covered + (hi - lo)

let messages_of_intervals intervals =
  let by_corr : (int, Span.interval list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (i : Span.interval) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_corr i.corr) in
      Hashtbl.replace by_corr i.corr (i :: prev))
    intervals;
  Hashtbl.fold
    (fun corr is acc ->
      let t0 = List.fold_left (fun m (i : Span.interval) -> min m i.t0)
          max_int is
      in
      let t1 = List.fold_left (fun m (i : Span.interval) -> max m i.t1)
          min_int is
      in
      let stage_ns =
        List.filter_map
          (fun stage ->
            let ns =
              List.fold_left
                (fun acc (i : Span.interval) ->
                  if i.stage = stage then acc + Span.duration i else acc)
                0 is
            in
            if ns > 0 || List.exists (fun (i : Span.interval) -> i.stage = stage) is
            then Some (stage, ns)
            else None)
          Trace.all_stages
      in
      let dominant =
        List.fold_left
          (fun best (stage, ns) ->
            match best with
            | Some (_, best_ns) when best_ns >= ns -> best
            | _ -> Some (stage, ns))
          None stage_ns
        |> Option.map fst
      in
      {
        corr;
        e2e_ns = t1 - t0;
        covered_ns = union_length is;
        dominant;
        stage_ns;
      }
      :: acc)
    by_corr []
  |> List.sort (fun a b -> compare a.corr b.corr)

let stage_rows messages spans =
  List.filter_map
    (fun stage ->
      let per_message =
        List.filter_map
          (fun m -> List.assoc_opt stage m.stage_ns)
          messages
      in
      if per_message = [] then None
      else
        let summary =
          Metrics.summary_of (List.map float_of_int per_message)
        in
        let total_ns = List.fold_left ( + ) 0 per_message in
        let stage_spans =
          List.filter (fun (i : Span.interval) -> i.stage = stage) spans
        in
        let total_cycles =
          List.fold_left
            (fun acc (i : Span.interval) -> acc + i.cycles)
            0 stage_spans
        in
        let dominant_in =
          List.length (List.filter (fun m -> m.dominant = Some stage) messages)
        in
        let p50, p99, mean =
          match summary with
          | Some s -> (s.Metrics.p50, s.Metrics.p99, s.Metrics.mean)
          | None -> (0., 0., 0.)
        in
        Some
          {
            stage;
            spans = List.length stage_spans;
            messages = List.length per_message;
            p50_ns = p50;
            p99_ns = p99;
            mean_ns = mean;
            total_ns;
            total_cycles;
            dominant_in;
          })
    Trace.all_stages

(* -- per-ASH attribution ------------------------------------------- *)

(* A dispatch opens a window; Vm_run/Dilp_run events accumulate until
   the commit/abort/kill closes it. Pipes a handler invokes run their
   own VM programs first, so the LAST Vm_run in the window is the
   handler's own execution and earlier ones are pipe work. *)
type window = {
  win_id : int;
  mutable win_vm : (int * int * int) list;  (* cycles, insns, checks *)
  mutable win_pipe_runs : int;
  mutable win_pipe_bytes : int;
}

type acc = {
  mutable a_downloads : int;
  mutable a_cache_hits : int;
  mutable a_dispatches : int;
  mutable a_commits : int;
  mutable a_aborts : int;
  mutable a_kills : int;
  mutable a_vm_runs : int;
  mutable a_vm_cycles : int;
  mutable a_vm_insns : int;
  mutable a_vm_checks : int;
  mutable a_pipe_runs : int;
  mutable a_pipe_bytes : int;
  mutable a_pipe_cycles : int;
}

let ash_rows evs =
  let open Trace in
  let accs : (int, acc) Hashtbl.t = Hashtbl.create 8 in
  let acc id =
    match Hashtbl.find_opt accs id with
    | Some a -> a
    | None ->
      let a =
        {
          a_downloads = 0;
          a_cache_hits = 0;
          a_dispatches = 0;
          a_commits = 0;
          a_aborts = 0;
          a_kills = 0;
          a_vm_runs = 0;
          a_vm_cycles = 0;
          a_vm_insns = 0;
          a_vm_checks = 0;
          a_pipe_runs = 0;
          a_pipe_bytes = 0;
          a_pipe_cycles = 0;
        }
      in
      Hashtbl.add accs id a;
      a
  in
  let window = ref None in
  let close id =
    match !window with
    | Some w when w.win_id = id ->
      window := None;
      let a = acc id in
      (* win_vm is newest-first, so its head is the last run in the
         window: the handler's own execution. The tail is the VM work
         of pipes the handler invoked mid-run. *)
      (match w.win_vm with
      | [] -> ()
      | (cycles, insns, checks) :: pipes ->
        a.a_vm_runs <- a.a_vm_runs + 1;
        a.a_vm_cycles <- a.a_vm_cycles + cycles;
        a.a_vm_insns <- a.a_vm_insns + insns;
        a.a_vm_checks <- a.a_vm_checks + checks;
        List.iter
          (fun (c, _, _) -> a.a_pipe_cycles <- a.a_pipe_cycles + c)
          pipes);
      a.a_pipe_runs <- a.a_pipe_runs + w.win_pipe_runs;
      a.a_pipe_bytes <- a.a_pipe_bytes + w.win_pipe_bytes
    | _ -> ()
  in
  List.iter
    (fun e ->
      match e.kind with
      | Ash_download { id; cache_hit; _ } ->
        let a = acc id in
        a.a_downloads <- a.a_downloads + 1;
        if cache_hit then a.a_cache_hits <- a.a_cache_hits + 1
      | Ash_dispatch { id; _ } ->
        (acc id).a_dispatches <- (acc id).a_dispatches + 1;
        window :=
          Some
            { win_id = id; win_vm = []; win_pipe_runs = 0; win_pipe_bytes = 0 }
      | Vm_run { cycles; insns; check_insns; _ } -> (
        match !window with
        | Some w -> w.win_vm <- (cycles, insns, check_insns) :: w.win_vm
        | None -> ())
      | Dilp_run { len; _ } -> (
        match !window with
        | Some w ->
          w.win_pipe_runs <- w.win_pipe_runs + 1;
          w.win_pipe_bytes <- w.win_pipe_bytes + len
        | None -> ())
      | Ash_commit { id } ->
        (acc id).a_commits <- (acc id).a_commits + 1;
        close id
      | Ash_abort { id } ->
        (acc id).a_aborts <- (acc id).a_aborts + 1;
        close id
      | Ash_kill { id; _ } ->
        (acc id).a_kills <- (acc id).a_kills + 1;
        close id
      | _ -> ())
    evs;
  Hashtbl.fold
    (fun id a rows ->
      let sandbox =
        if a.a_vm_insns > 0 then a.a_vm_cycles * a.a_vm_checks / a.a_vm_insns
        else 0
      in
      {
        id;
        downloads = a.a_downloads;
        cache_hits = a.a_cache_hits;
        dispatches = a.a_dispatches;
        commits = a.a_commits;
        aborts = a.a_aborts;
        kills = a.a_kills;
        vm_runs = a.a_vm_runs;
        vm_cycles = a.a_vm_cycles;
        vm_insns = a.a_vm_insns;
        vm_check_insns = a.a_vm_checks;
        sandbox_cycles_est = sandbox;
        payload_cycles_est = a.a_vm_cycles - sandbox;
        pipe_runs = a.a_pipe_runs;
        pipe_bytes = a.a_pipe_bytes;
        pipe_cycles = a.a_pipe_cycles;
      }
      :: rows)
    accs []
  |> List.sort (fun a b -> compare a.id b.id)

let of_events events =
  let spans = Span.intervals events in
  let unclosed = Span.unclosed events in
  let messages = messages_of_intervals spans in
  {
    messages;
    stages = stage_rows messages spans;
    ashes = ash_rows events;
    spans;
    unclosed;
  }

let of_recorder r = of_events (Trace.events r)

(* -- rendering ------------------------------------------------------ *)

let us ns = float_of_int ns /. 1_000.
let us_f ns = ns /. 1_000.

let pp ppf t =
  let n = List.length t.messages in
  Format.fprintf ppf "=== per-stage latency (%d message%s) ===@." n
    (if n = 1 then "" else "s");
  if t.stages = [] then
    Format.fprintf ppf "  (no spans recorded; is tracing on?)@."
  else begin
    Format.fprintf ppf "  %-8s %6s %6s %10s %10s %10s %12s %9s@." "stage"
      "msgs" "spans" "p50(us)" "p99(us)" "mean(us)" "cycles" "dominant";
    List.iter
      (fun row ->
        Format.fprintf ppf "  %-8s %6d %6d %10.3f %10.3f %10.3f %12d %9d@."
          (Trace.stage_label row.stage)
          row.messages row.spans (us_f row.p50_ns) (us_f row.p99_ns)
          (us_f row.mean_ns) row.total_cycles row.dominant_in)
      t.stages;
    (match
       Metrics.summary_of
         (List.map (fun m -> float_of_int m.e2e_ns) t.messages)
     with
    | Some s ->
      Format.fprintf ppf "  %-8s %6d %6s %10.3f %10.3f %10.3f@." "e2e" n "-"
        (us_f s.Metrics.p50) (us_f s.Metrics.p99) (us_f s.Metrics.mean)
    | None -> ())
  end;
  if t.unclosed <> [] then begin
    Format.fprintf ppf "  ! %d unclosed span(s):@." (List.length t.unclosed);
    List.iter
      (fun (corr, stage, t0) ->
        Format.fprintf ppf "    corr=%d %s opened at %.3fus@." corr
          (Trace.stage_label stage) (us t0))
      t.unclosed
  end;
  Format.fprintf ppf "=== per-ASH profile ===@.";
  if t.ashes = [] then Format.fprintf ppf "  (no handlers observed)@."
  else begin
    Format.fprintf ppf
      "  %-4s %4s %5s %6s %7s %6s %5s %10s %10s %10s %10s %6s %8s@." "id"
      "dl" "hits" "disp" "commit" "abort" "kill" "vm-cycles" "sandbox"
      "payload" "pipe-cyc" "pipes" "pipe-B";
    List.iter
      (fun row ->
        Format.fprintf ppf
          "  %-4d %4d %5d %6d %7d %6d %5d %10d %10d %10d %10d %6d %8d@."
          row.id row.downloads row.cache_hits row.dispatches row.commits
          row.aborts row.kills row.vm_cycles row.sandbox_cycles_est
          row.payload_cycles_est row.pipe_cycles row.pipe_runs row.pipe_bytes)
      t.ashes
  end
