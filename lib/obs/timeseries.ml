type src = G of (unit -> float) | R of (unit -> int)

type series = {
  mutable src : src;
  mutable last_total : int;  (* rates: reading at the previous sample *)
  mutable cum : int;  (* rates: sum of all deltas ever sampled *)
  ts : int array;
  vs : float array;
  mutable head : int;  (* next write slot *)
  mutable len : int;
}

type t = {
  interval_ns : int;
  capacity : int;
  registry : (string, series) Hashtbl.t;
  mutable next_due : int;
}

let default_interval_ns = 100_000 (* 100 us of virtual time *)
let default_capacity = 512

let create ?(interval_ns = default_interval_ns) ?(capacity = default_capacity)
    () =
  if interval_ns < 1 then invalid_arg "Timeseries.create: interval_ns < 1";
  if capacity < 1 then invalid_arg "Timeseries.create: capacity < 1";
  { interval_ns; capacity; registry = Hashtbl.create 32; next_due = 0 }

let interval_ns t = t.interval_ns

let fresh_series t src =
  {
    src;
    last_total = 0;
    cum = 0;
    ts = Array.make t.capacity 0;
    vs = Array.make t.capacity 0.;
    head = 0;
    len = 0;
  }

(* Last-wins: replacing a source keeps the ring so a component
   re-created under the same name continues its series. Rates
   rebaseline on the new total so a restart-from-zero never yields a
   negative delta. *)
let register t name src =
  match Hashtbl.find_opt t.registry name with
  | Some s ->
    s.src <- src;
    (match src with R f -> s.last_total <- f () | G _ -> ())
  | None ->
    let s = fresh_series t src in
    (match src with R f -> s.last_total <- f () | G _ -> ());
    Hashtbl.add t.registry name s

let register_gauge t name f = register t name (G f)
let register_rate t name f = register t name (R f)
let unregister t name = Hashtbl.remove t.registry name

let push s ~at v =
  let cap = Array.length s.ts in
  s.ts.(s.head) <- at;
  s.vs.(s.head) <- v;
  s.head <- (s.head + 1) mod cap;
  if s.len < cap then s.len <- s.len + 1

let sample_series s ~at =
  match s.src with
  | G f -> push s ~at (f ())
  | R f ->
    let total = f () in
    let delta = total - s.last_total in
    s.last_total <- total;
    s.cum <- s.cum + delta;
    push s ~at (float_of_int delta)

let sample t ~now =
  Hashtbl.iter (fun _ s -> sample_series s ~at:now) t.registry

let tick t ~now =
  (* A clock more than one interval behind the grid means a new engine
     started in this process: realign rather than going silent until
     virtual time catches back up. *)
  if now + t.interval_ns < t.next_due then
    t.next_due <- now / t.interval_ns * t.interval_ns;
  if now >= t.next_due then begin
    sample t ~now:t.next_due;
    t.next_due <- ((now / t.interval_ns) + 1) * t.interval_ns
  end

(* Ambient instance: root domain only. The engine's per-step hook and
   the cluster's barrier hook read this ref, so it never matters
   whether the engine or the telemetry instance was created first. *)
let current_ref : t option ref = ref None
let set_current t = current_ref := Some t
let clear_current () = current_ref := None
let current () = !current_ref

let tick_current ~now =
  match !current_ref with None -> () | Some t -> tick t ~now

(* ------------------------------------------------------------------ *)
(* Reading and export                                                  *)
(* ------------------------------------------------------------------ *)

type kind = Gauge | Rate

type view = {
  name : string;
  kind : kind;
  cum : int;
  samples : (int * float) list;
}

let view_of name s ~last =
  let cap = Array.length s.ts in
  let n = min last s.len in
  let samples = ref [] in
  for i = 0 to n - 1 do
    (* newest-first index walk, consed to oldest-first *)
    let idx = (s.head - 1 - i + (2 * cap)) mod cap in
    samples := (s.ts.(idx), s.vs.(idx)) :: !samples
  done;
  {
    name;
    kind = (match s.src with G _ -> Gauge | R _ -> Rate);
    cum = s.cum;
    samples = !samples;
  }

let views t ~last =
  Hashtbl.fold (fun name s acc -> view_of name s ~last :: acc) t.registry []
  |> List.sort (fun a b -> String.compare a.name b.name)

let series t = views t ~last:max_int
let window t ~last = views t ~last

(* Deterministic number rendering: rate deltas are exact ints; gauge
   values print via %.6g (integral floats render bare, e.g. "3"). *)
let render_value kind v =
  match kind with
  | Rate -> string_of_int (int_of_float v)
  | Gauge -> Printf.sprintf "%.6g" v

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let views_to_json ?(meta = []) ~interval_ns views =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"ashs-telemetry/1\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"interval_ns\": %d,\n" interval_ns);
  if meta <> [] then begin
    Buffer.add_string b "  \"meta\": {";
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_string b ", ";
         Buffer.add_string b
           (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)))
      meta;
    Buffer.add_string b "},\n"
  end;
  Buffer.add_string b "  \"series\": [";
  List.iteri
    (fun i v ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b "\n    {";
       Buffer.add_string b
         (Printf.sprintf "\"name\": \"%s\", \"kind\": \"%s\", "
            (json_escape v.name)
            (match v.kind with Gauge -> "gauge" | Rate -> "rate"));
       if v.kind = Rate then
         Buffer.add_string b (Printf.sprintf "\"total\": %d, " v.cum);
       Buffer.add_string b "\"samples\": [";
       List.iteri
         (fun j (ts, x) ->
            if j > 0 then Buffer.add_string b ", ";
            Buffer.add_string b
              (Printf.sprintf "[%d, %s]" ts (render_value v.kind x)))
         v.samples;
       Buffer.add_string b "]}")
    views;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let to_json ?meta t =
  views_to_json ?meta ~interval_ns:t.interval_ns (series t)

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Our dotted/dashed
   names map '.' and '-' to '_'; anything else unexpected likewise. *)
let prom_name name =
  let b = Buffer.create (String.length name + 4) in
  Buffer.add_string b "ash_";
  String.iter
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
       | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let to_prometheus t =
  let b = Buffer.create 2048 in
  List.iter
    (fun v ->
       let n = prom_name v.name in
       match v.kind with
       | Rate ->
         Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n);
         Buffer.add_string b (Printf.sprintf "%s %d\n" n v.cum)
       | Gauge -> (
         match List.rev v.samples with
         | [] -> () (* never sampled: no value to expose *)
         | (_, x) :: _ ->
           Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
           Buffer.add_string b
             (Printf.sprintf "%s %s\n" n (render_value Gauge x))))
    (series t);
  Buffer.contents b
