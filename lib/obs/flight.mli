(** Always-on black-box flight recorder.

    A {!t} arms a {!Trace.add_tap} on the root event stream and keeps a
    small secondary ring of recent events — independent of any
    {!Trace.recorder}, so it stays live across [record]/[stop] cycles
    and costs nothing to the rest of the stack beyond event emission.
    When an anomaly trigger fires it snapshots a postmortem {!dump}:
    the triggering event, the recent event window, the causal spans
    recoverable from that window, and the trailing samples of the
    ambient {!Timeseries} (when one is installed).

    Triggers (thresholds in {!config}):
    - {e quarantine}: any {!Trace.kind.Ash_quarantine} event;
    - {e queue-full burst}: ≥ [queue_full_burst] kernel [Queue_full]
      drops within [burst_window_ns];
    - {e retransmit storm}: ≥ [retransmit_storm]
      {!Trace.kind.Tcp_retransmit} events within [burst_window_ns];
    - {e redelivery storm}: ≥ [redelivery_storm]
      {!Trace.kind.Mq_redelivery} events within [burst_window_ns] —
      the message-queue clients are resending faster than the brokers
      acknowledge;
    - {e switch-drop spike}: ≥ [switch_drop_spike] switch tail drops
      within [burst_window_ns];
    - {e stalled epoch}: events keep flowing (or {!heartbeat} keeps
      arriving) but no delivery-progress event has been seen for
      [stall_ns]. A single event or heartbeat arriving after a quiet
      gap of [stall_ns] or more does {e not} fire: the simulation
      fast-forwarded over idle virtual time (an RTO backoff, a
      TIME_WAIT expiry), which is the engine working as designed — a
      real stall has activity landing {e inside} the window with no
      progress among it.

    After a dump the recorder goes quiet for [cooldown_ns] so one
    sustained anomaly produces one dump, not thousands; at most
    [max_dumps] dumps are retained per arming. Virtual time running
    backwards (a new engine in the same process) resets the windows. *)

type trigger =
  | Quarantine
  | Queue_full_burst
  | Retransmit_storm
  | Redelivery_storm
  | Switch_drop_spike
  | Stalled_epoch

val trigger_label : trigger -> string
(** Stable dashed label, e.g. ["queue-full-burst"]. *)

type config = {
  ring_capacity : int;  (** retained recent events (default 2048) *)
  metric_window : int;  (** trailing samples per series (default 32) *)
  queue_full_burst : int;  (** threshold; [<= 0] disables (default 8) *)
  retransmit_storm : int;  (** threshold; [<= 0] disables (default 12) *)
  redelivery_storm : int;  (** threshold; [<= 0] disables (default 12) *)
  switch_drop_spike : int;  (** threshold; [<= 0] disables (default 8) *)
  burst_window_ns : int;  (** burst-counting window (default 1 ms) *)
  stall_ns : int;  (** progress-starvation bound; [<= 0] disables
                       (default 50 ms) *)
  cooldown_ns : int;  (** quiet period after a dump (default 5 ms) *)
  max_dumps : int;  (** retained dumps per arming (default 8) *)
  keep_engine_events : bool;
      (** retain [engine.scheduled]/[engine.fired] in the ring
          (default false: they are volume without postmortem signal) *)
}

val default_config : config

type dump = {
  d_trigger : trigger;
  d_ts : int;  (** virtual time the trigger fired *)
  d_event : Trace.event option;
      (** the triggering event ([None] for a heartbeat-detected
          stall) *)
  d_events : Trace.event list;  (** the recent-event window, oldest
                                    first *)
  d_spans : Span.interval list;  (** causal spans closed within the
                                     window *)
  d_metrics : Timeseries.view list;
      (** trailing metric samples at dump time; [[]] without an
          ambient timeseries *)
  d_interval_ns : int;  (** the sampled timeseries' grid pitch *)
}

type t

val arm : ?config:config -> ?timeseries:Timeseries.t -> unit -> t
(** Install the tap. [timeseries] defaults to {!Timeseries.current}
    read lazily at each dump, so arming order never matters. While any
    flight recorder is armed, {!Trace.enabled} is true and every layer
    emits events. *)

val disarm : t -> unit
(** Remove the tap. Dumps stay readable. *)

val heartbeat : t -> now:int -> unit
(** Progress-starvation check without an event: the cluster calls this
    at every epoch barrier so a stall on a quiet shard layout is still
    caught. *)

val heartbeat_all : now:int -> unit
(** {!heartbeat} on every armed recorder (the cluster's barrier
    hook). *)

val dumps : t -> dump list
(** Retained dumps, oldest first (at most [max_dumps]). *)

val dump_count : t -> int
(** Dumps ever fired, including any beyond [max_dumps]. *)

val dump_to_json : dump -> string
(** Schema ["ashs-flight-dump/1"]: trigger, timestamp, triggering
    event, event window, span intervals, metric window. *)

val write_dumps : t -> prefix:string -> string list
(** Write each retained dump to ["<prefix>-<n>.json"], returning the
    paths — the chaos/scale suites call this on failure so CI can
    upload the black box. *)
