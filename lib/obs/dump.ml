(* Text and JSON rendering of a recorder's trace ring and metrics. The
   JSON is hand-rolled so the library stays dependency-free. *)

let default_max_events = 200

let pp_recorder ?(max_events = default_max_events) ppf r =
  let events = Trace.events r in
  let n = List.length events in
  let shown = if max_events < 0 then events else
      (* Keep the most recent [max_events]: the tail of the run is what
         a failing experiment usually needs. *)
      let skip = max 0 (n - max_events) in
      List.filteri (fun i _ -> i >= skip) events
  in
  Format.fprintf ppf "@.=== trace: %d events (%d dropped from ring) ===@."
    (Trace.total r) (Trace.dropped r);
  let elided = n - List.length shown in
  if elided > 0 then
    Format.fprintf ppf "  ... %d earlier events elided ...@." elided;
  List.iter (fun e -> Format.fprintf ppf "  %a@." Trace.pp_event e) shown;
  let m = Trace.metrics r in
  Format.fprintf ppf "=== counters ===@.";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %-28s %d@." name v)
    (Metrics.counters m);
  let histos = Metrics.histograms m in
  if histos <> [] then begin
    Format.fprintf ppf "=== histograms ===@.";
    List.iter
      (fun (name, s) ->
         Format.fprintf ppf "  %-28s %a@." name Metrics.pp_summary s)
      histos
  end

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_field_value v =
  (* Numeric and boolean field values pass through bare; everything else
     is quoted. *)
  let numeric =
    v <> ""
    && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') v
  in
  if numeric || v = "true" || v = "false" then v
  else "\"" ^ json_escape v ^ "\""

let event_to_json (e : Trace.event) =
  let fields =
    List.map
      (fun (f, v) -> Printf.sprintf "\"%s\":%s" f (json_field_value v))
      (Trace.fields e.Trace.kind)
  in
  Printf.sprintf "{\"seq\":%d,\"ts\":%d,\"kind\":\"%s\"%s}" e.Trace.seq
    e.Trace.ts
    (Trace.label e.Trace.kind)
    (if fields = [] then "" else "," ^ String.concat "," fields)

let summary_to_json (s : Metrics.summary) =
  Printf.sprintf
    "{\"count\":%d,\"min\":%g,\"max\":%g,\"mean\":%g,\"p50\":%g,\"p90\":%g,\"p99\":%g}"
    s.Metrics.count s.Metrics.min s.Metrics.max s.Metrics.mean s.Metrics.p50
    s.Metrics.p90 s.Metrics.p99

let to_json r =
  let m = Trace.metrics r in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"total\":%d,\"dropped\":%d,\"events\":[" (Trace.total r)
       (Trace.dropped r));
  List.iteri
    (fun i e ->
       if i > 0 then Buffer.add_char buf ',';
       Buffer.add_string buf (event_to_json e))
    (Trace.events r);
  Buffer.add_string buf "],\"counters\":{";
  List.iteri
    (fun i (name, v) ->
       if i > 0 then Buffer.add_char buf ',';
       Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape name) v))
    (Metrics.counters m);
  Buffer.add_string buf "},\"histograms\":{";
  List.iteri
    (fun i (name, s) ->
       if i > 0 then Buffer.add_char buf ',';
       Buffer.add_string buf
         (Printf.sprintf "\"%s\":%s" (json_escape name) (summary_to_json s)))
    (Metrics.histograms m);
  Buffer.add_string buf "}}";
  Buffer.contents buf
