(* Text and JSON rendering of a recorder's trace ring and metrics. The
   JSON is hand-rolled so the library stays dependency-free. *)

let default_max_events = 200

let pp_recorder ?(max_events = default_max_events) ppf r =
  let events = Trace.events r in
  let n = List.length events in
  let shown = if max_events < 0 then events else
      (* Keep the most recent [max_events]: the tail of the run is what
         a failing experiment usually needs. *)
      let skip = max 0 (n - max_events) in
      List.filteri (fun i _ -> i >= skip) events
  in
  Format.fprintf ppf "@.=== trace: %d events (%d dropped from ring) ===@."
    (Trace.total r) (Trace.dropped r);
  let elided = n - List.length shown in
  if elided > 0 then
    Format.fprintf ppf "  ... %d earlier events elided ...@." elided;
  List.iter (fun e -> Format.fprintf ppf "  %a@." Trace.pp_event e) shown;
  let m = Trace.metrics r in
  Format.fprintf ppf "=== counters ===@.";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %-28s %d@." name v)
    (Metrics.counters m);
  let histos = Metrics.histograms m in
  if histos <> [] then begin
    Format.fprintf ppf "=== histograms ===@.";
    List.iter
      (fun (name, s) ->
         Format.fprintf ppf "  %-28s %a@." name Metrics.pp_summary s)
      histos
  end

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_field_value v =
  (* Numeric and boolean field values pass through bare; everything else
     is quoted. Only an optional leading '-' followed by digits counts
     as numeric — values like "-" or "1-2" must be quoted or the
     output is not JSON. *)
  let is_digit c = c >= '0' && c <= '9' in
  let numeric =
    let n = String.length v in
    let start = if n > 0 && v.[0] = '-' then 1 else 0 in
    n > start
    && (let ok = ref true in
        for i = start to n - 1 do
          if not (is_digit v.[i]) then ok := false
        done;
        !ok)
  in
  if numeric || v = "true" || v = "false" then v
  else "\"" ^ json_escape v ^ "\""

let event_to_json (e : Trace.event) =
  let fields =
    List.map
      (fun (f, v) -> Printf.sprintf "\"%s\":%s" f (json_field_value v))
      (Trace.fields e.Trace.kind)
  in
  Printf.sprintf "{\"seq\":%d,\"ts\":%d%s,\"kind\":\"%s\"%s}" e.Trace.seq
    e.Trace.ts
    (if e.Trace.corr <> 0 then Printf.sprintf ",\"corr\":%d" e.Trace.corr
     else "")
    (Trace.label e.Trace.kind)
    (if fields = [] then "" else "," ^ String.concat "," fields)

let summary_to_json (s : Metrics.summary) =
  Printf.sprintf
    "{\"count\":%d,\"min\":%g,\"max\":%g,\"mean\":%g,\"p50\":%g,\"p90\":%g,\"p99\":%g}"
    s.Metrics.count s.Metrics.min s.Metrics.max s.Metrics.mean s.Metrics.p50
    s.Metrics.p90 s.Metrics.p99

let to_json r =
  let m = Trace.metrics r in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"total\":%d,\"dropped\":%d,\"events\":[" (Trace.total r)
       (Trace.dropped r));
  List.iteri
    (fun i e ->
       if i > 0 then Buffer.add_char buf ',';
       Buffer.add_string buf (event_to_json e))
    (Trace.events r);
  Buffer.add_string buf "],\"counters\":{";
  List.iteri
    (fun i (name, v) ->
       if i > 0 then Buffer.add_char buf ',';
       Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape name) v))
    (Metrics.counters m);
  Buffer.add_string buf "},\"histograms\":{";
  List.iteri
    (fun i (name, s) ->
       if i > 0 then Buffer.add_char buf ',';
       Buffer.add_string buf
         (Printf.sprintf "\"%s\":%s" (json_escape name) (summary_to_json s)))
    (Metrics.histograms m);
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* Chrome-trace-event export (load in Perfetto / chrome://tracing).
   Track mapping: pid = correlation id (one "process" per message),
   tid = stage index — stage spans of one message never overlap within
   a stage, so every track's B/E events nest properly even though e.g.
   the reply span opens while the proto span is still open on another
   track. Non-span events with a correlation id become instants on
   tid 0. Timestamps are span-clock microseconds. *)
let to_chrome_json ?(shards = 1) ?(jobs = 1) ?host_cores r =
  let events = Trace.events r in
  let intervals = Span.intervals events in
  let stage_tid stage =
    let rec idx i = function
      | [] -> 0
      | s :: rest -> if s = stage then i else idx (i + 1) rest
    in
    idx 1 Trace.all_stages
  in
  let usec ns = Printf.sprintf "%.3f" (float_of_int ns /. 1_000.) in
  let items = ref [] in
  let count = ref 0 in
  let add ts json =
    items := (ts, !count, json) :: !items;
    incr count
  in
  (* Named tracks: every (message, stage) pair that has spans, plus an
     "events" track for each message's instants. *)
  let threads = Hashtbl.create 32 in
  List.iter
    (fun (i : Span.interval) ->
      Hashtbl.replace threads (i.corr, stage_tid i.stage)
        (Trace.stage_label i.stage))
    intervals;
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.kind with
      | Trace.Span_begin _ | Trace.Span_end _ -> ()
      | _ -> if e.Trace.corr > 0 then
          Hashtbl.replace threads (e.Trace.corr, 0) "events")
    events;
  let thread_list =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) threads [])
  in
  let pids =
    List.sort_uniq compare (List.map (fun ((pid, _), _) -> pid) thread_list)
  in
  List.iter
    (fun pid ->
      (* Strided correlation allocation (shard s of N hands out s+1,
         s+1+N, ...) makes a message's home shard recoverable from its
         id alone. *)
      let name =
        if shards > 1 then
          Printf.sprintf "message %d [shard %d/%d, jobs %d%s]" pid
            ((pid - 1) mod shards)
            shards jobs
            (match host_cores with
             | None -> ""
             | Some c -> Printf.sprintf ", cores %d" c)
        else Printf.sprintf "message %d" pid
      in
      add 0
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"ts\":0,\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}"
           pid (json_escape name)))
    pids;
  List.iter
    (fun ((pid, tid), name) ->
      add 0
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"ts\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}"
           pid tid (json_escape name)))
    thread_list;
  List.iter
    (fun (i : Span.interval) ->
      let tid = stage_tid i.stage in
      add i.t0
        (Printf.sprintf
           "{\"ph\":\"B\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"name\":\"%s\",\"args\":{\"cycles\":%d}}"
           i.corr tid (usec i.t0)
           (Trace.stage_label i.stage)
           i.cycles);
      add i.t1
        (Printf.sprintf "{\"ph\":\"E\",\"pid\":%d,\"tid\":%d,\"ts\":%s}" i.corr
           tid (usec i.t1)))
    intervals;
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.kind with
      | Trace.Span_begin _ | Trace.Span_end _ -> ()
      | k ->
        if e.Trace.corr > 0 then begin
          let args =
            List.map
              (fun (f, v) ->
                Printf.sprintf "\"%s\":%s" (json_escape f)
                  (json_field_value v))
              (Trace.fields k)
          in
          add e.Trace.ts
            (Printf.sprintf
               "{\"ph\":\"i\",\"pid\":%d,\"tid\":0,\"ts\":%s,\"s\":\"t\",\"name\":\"%s\",\"args\":{%s}}"
               e.Trace.corr (usec e.Trace.ts) (Trace.label k)
               (String.concat "," args))
        end)
    events;
  let sorted =
    List.sort
      (fun (ts_a, i_a, _) (ts_b, i_b, _) -> compare (ts_a, i_a) (ts_b, i_b))
      !items
  in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i (_, _, json) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf json)
    sorted;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ns\"}";
  Buffer.contents buf
