(** Structured event tracing for the whole stack.

    Every layer emits typed events through a single global sink. By
    default the sink is a no-op (one flag load on the hot path; emission
    sites guard on {!enabled} so event payloads are never allocated when
    tracing is off). Installing a {!recorder} captures events into a
    bounded in-memory ring, stamps them with virtual time and the
    ambient correlation id, and derives named counters and histograms
    from them.

    A recorded run is a replayable, assertable event stream: the
    determinism and differential test suites compare streams
    structurally, and [ashbench --trace] dumps them for inspection. *)

(** Why a frame was dropped. A closed vocabulary so drop counters
    cannot fragment on emission-site typos; {!drop_reason_label} gives
    the stable rendered strings. *)
type drop_reason =
  | Crc  (** checksum failed on receive *)
  | Unbound  (** VC has no registered handler *)
  | No_buffer  (** receive queue full *)
  | No_vc  (** frame named a VC outside the table *)
  | No_pktbuf  (** kernel packet-buffer pool exhausted *)
  | Dpf_miss  (** demux matched no filter *)
  | Too_big  (** frame exceeds the link MTU *)
  | Queue_full  (** bounded kernel notification queue overflowed *)
  | Dup_seq  (** MQ produce already appended (dedup window hit) *)
  | Stale_seq  (** MQ produce below the dedup window — ignored *)
  | Repl_gap  (** MQ replicate above the replica's gapless prefix *)

val drop_reason_label : drop_reason -> string
(** Stable dashed label, e.g. ["no-pktbuf"]. *)

(** What the deterministic fault-injection layer ({!Ash_sim.Fault} via
    the NIC faulty-link wrappers) did to a frame. Closed for the same
    reason as {!drop_reason}. *)
type fault_kind =
  | F_drop  (** lost mid-flight; the wire time is still consumed *)
  | F_corrupt  (** one bit flipped; caught by the receiver's link CRC *)
  | F_truncate  (** delivered short; caught by the link CRC *)
  | F_duplicate  (** delivered twice *)
  | F_reorder  (** delivery delayed so later frames overtake it *)
  | F_jitter  (** delivery delayed without reordering intent *)

val fault_kind_label : fault_kind -> string
(** Stable label, e.g. ["truncate"]. *)

val all_fault_kinds : fault_kind list

(** The causal stages one message passes through — the paper's
    Table 2/6 decomposition. Every span event names one of these. *)
type stage =
  | Wire  (** serialization + propagation on the link *)
  | Rx_dma  (** NIC receive DMA and per-frame kernel rx work *)
  | Demux  (** VC lookup / DPF evaluation *)
  | Ash_run  (** in-kernel handler execution (incl. pipes it calls) *)
  | Pipe  (** DILP integrated copy/checksum words *)
  | Proto  (** protocol library processing (UDP/TCP) *)
  | Deliver  (** upcall + application handler *)
  | Reply  (** send-side work from app call to NIC transmit *)

val stage_label : stage -> string
(** Stable dashed label, e.g. ["ash-run"]. *)

val all_stages : stage list
(** Every stage, in causal order. *)

(** The trace event taxonomy. Field units: [bytes] are frame bytes,
    [cycles] are simulated CPU cycles, timestamps are virtual ns. *)
type kind =
  | Ev_scheduled of { at : int }  (** engine event enqueued for time [at] *)
  | Ev_fired  (** engine event dispatched *)
  | Pkt_tx of { nic : string; bytes : int }  (** frame left a NIC *)
  | Pkt_rx of { nic : string; bytes : int }  (** frame DMA'd into memory *)
  | Pkt_drop of { nic : string; reason : drop_reason }  (** frame lost *)
  | Wire_tx of { bytes : int; busy_until : int }
      (** link-level occupancy: the wire is busy until [busy_until] *)
  | Dpf_eval of { compiled : bool; matched : bool }
      (** one filter evaluation (compiled or tree-interpreted) *)
  | Dpf_match of { vc : int }  (** demux found a binding *)
  | Dpf_miss  (** demux exhausted all bindings *)
  | Upcall of { vc : int }  (** handler run at user level via upcall *)
  | User_deliver of { vc : int }  (** message handed to the application *)
  | Ash_dispatch of { id : int; vc : int }  (** ASH invoked in-kernel *)
  | Ash_commit of { id : int }
  | Ash_abort of { id : int }  (** voluntary abort: kernel path takes over *)
  | Ash_kill of { id : int; reason : string }  (** involuntary termination *)
  | Sandbox_violation of { reason : string }
      (** a VM run was killed (gas, memory fault, wild jump, ...) *)
  | Vm_run of {
      name : string;
      outcome : string;
      insns : int;
      check_insns : int;
      cycles : int;
    }  (** one interpreter run, with the paper's §V-D counters *)
  | Dilp_compile of { name : string; insns : int }
  | Dilp_run of { name : string; len : int }
  | Tcp_fast_hit  (** TCP fast-path handler committed *)
  | Tcp_fast_miss  (** segment fell back to the library path *)
  | Tcp_retransmit of { how : string; seq : int }
      (** one segment resent: [how] is ["timeout"] (RTO expiry, also
          go-back-N resends it triggers) or ["fast"] (3 dup ACKs);
          [seq] is the segment's ending sequence number *)
  | Mq_redelivery of { producer : int; seq : int; attempt : int }
      (** a message-queue client resent an unacked produce; [attempt]
          counts retries of this (producer, seq), starting at 1 *)
  | Ash_download of {
      id : int;
      cache_hit : bool;
      checks_elided : int;
      static_bound : int option;
    }
      (** handler installed, noting whether PR 2's cache supplied it,
          how many sandbox checks download-time absint elided, and the
          static worst-case cycle bound when one was provable *)
  | Fault_injected of { nic : string; fault : fault_kind }
      (** the injection layer perturbed a frame on [nic]'s transmit
          direction; the ambient correlation id names the victim *)
  | Ash_quarantine of { id : int; kills : int }
      (** handler demoted to the user path after [kills] involuntary
          kills; it stays demoted until {!Ash_kern.Kernel.rearm_ash} *)
  | Ash_rearm of { id : int }  (** quarantine cleared by the owner *)
  | Span_begin of { corr : int; stage : stage; off : int }
      (** stage span opened for message [corr]; the span clock is
          [event ts + off] (see {!Span}) *)
  | Span_end of { corr : int; stage : stage; off : int; cycles : int }
      (** stage span closed; [cycles] is the CPU work metered inside *)
  | Mark of string  (** free-form annotation *)

type event = { seq : int; ts : int; corr : int; kind : kind }
(** [corr] is the correlation id ambient when the event was emitted
    (0 when no message was in flight). *)

(** {1 Emission contexts}

    All ambient trace state — clock, sink, enabled flag, correlation
    allocator — is domain-local (one emission context per OCaml
    domain), so engine shards running on worker domains never race on
    it. The main domain's context is the "root": recorders install
    there, and on a single domain everything behaves exactly like the
    historical process-global state. Shard execution swaps in a
    {!shard_buf} context (see below). *)

val set_clock : (unit -> int) -> unit
(** Register the virtual-time source used to stamp events in the
    current domain's context. The simulation engine calls this on
    creation; the default clock returns 0. *)

val swap_clock : (unit -> int) -> (unit -> int)
(** Install a clock and return the previously installed one. The
    simulation engine brackets event dispatch with this so that with
    several live engines, events are always stamped by the engine that
    is actually running (not the last one created). *)

val now : unit -> int

val enabled : unit -> bool
(** True when a sink is installed — or, on the root context, when at
    least one {!tap} is armed. Emission sites use this to skip event
    construction entirely when tracing is off. *)

val emit : kind -> unit
(** Send an event to the current sink (a no-op when tracing is off). *)

val set_sink : (kind -> unit) -> unit
val clear_sink : unit -> unit

(** {1 Taps}

    A tap is a secondary consumer of the root event stream — the
    flight recorder's feed. Taps run beside the recorder sink and see
    every event the root context emits (including shard events merged
    in at epoch barriers), whether or not a recorder is installed, so
    a black-box recorder stays armed across {!record}/{!stop} cycles.
    Main-domain only: shard/worker contexts never dispatch to taps
    directly. *)

type tap_id

val add_tap : (ts:int -> corr:int -> kind -> unit) -> tap_id
(** Arm a tap; it fires in registration order after the sink. While
    any tap is armed, {!enabled} is true on the root context. *)

val remove_tap : tap_id -> unit

val emit_at : ts:int -> corr:int -> kind -> unit
(** Deliver an already-stamped event to the current sink. Used by the
    cluster's epoch barrier to inject merged shard events into the
    root recorder with the timestamps and correlation ids they carried
    on their home shard. With a plain {!set_sink} sink the stamps are
    dropped (the sink only sees the kind). *)

(** {1 Shard buffers}

    A shard buffer is the emission context used while one engine shard
    executes, possibly on a worker domain. Events are stamped with the
    shard's clock and ambient correlation id and appended to a local
    buffer; at each epoch barrier the cluster merges all shard buffers
    in (ts, shard index) order and re-emits them into the root context
    via {!emit_at}. Correlation ids are allocated from a strided
    sequence — shard [s] of [N] hands out [s+1], [s+1+N], ... — so id
    assignment depends only on the shard layout, never on domain
    interleaving. *)

type shard_buf

val shard_buf : shard:int -> shards:int -> shard_buf
(** A fresh shard context for shard [shard] of [shards]. Disabled and
    clockless until configured. *)

val shard_set_clock : shard_buf -> (unit -> int) -> unit
(** Register the shard's virtual-time source (its engine's clock). *)

val shard_set_enabled : shard_buf -> bool -> unit
(** Propagate the root context's enabled flag into the shard context.
    The cluster calls this at every epoch start, on the main domain,
    so mid-run recorder changes take effect at the next barrier. *)

val with_shard : shard_buf -> (unit -> 'a) -> 'a
(** Run [f] with the current domain's emission context swapped to the
    shard's, restoring the previous context on exit. *)

val shard_len : shard_buf -> int
(** Buffered events since the last {!shard_clear}. *)

val shard_get : shard_buf -> int -> int * int * kind
(** [shard_get sb i] is the [i]th buffered event as (ts, corr, kind). *)

val shard_clear : shard_buf -> unit

(** {1 Correlation ids}

    A correlation id names one message's causal chain, from the
    application call that initiated it through every kernel, NIC, and
    handler event it triggers — including an in-kernel ASH reply. Id 0
    means "no message in flight". The id is ambient: the engine captures
    it into each scheduled event and restores it around dispatch, so
    asynchronous continuations inherit the id of the message that
    scheduled them. *)

val new_corr : unit -> int
(** Allocate a fresh (positive) correlation id without installing it. *)

val current_corr : unit -> int
(** The ambient correlation id (0 when none). *)

val set_corr : int -> unit
(** Install [c] as the ambient correlation id. *)

val ensure_corr : unit -> int
(** The ambient id, allocating and installing a fresh one if none. *)

val with_corr : int -> (unit -> 'a) -> 'a
(** Run [f] with the ambient id set to [c], restoring on exit. *)

(** {1 Span sampling}

    [set_span_sample n] records every [n]th message's spans (messages
    [1, n+1, 2n+1, ...]). Counters and non-span events stay exact; only
    {!kind.Span_begin}/{!kind.Span_end} emission is gated, and all
    endpoints of one message share the same verdict so pairs never
    tear. *)

val set_span_sample : int -> unit
(** Raises [Invalid_argument] when [n < 1]. Default 1 (every message). *)

val span_sample : unit -> int
val span_on : int -> bool
(** [span_on corr]: should spans for message [corr] be emitted now? *)

val label : kind -> string
(** Stable dotted name of the event type, e.g. ["ash.dispatch"]. *)

val fields : kind -> (string * string) list
(** The event's payload as name/value pairs, for rendering. *)

val pp_kind : Format.formatter -> kind -> unit
val pp_event : Format.formatter -> event -> unit

(** {1 Recorder} *)

type recorder
(** A bounded ring of the most recent events plus metrics derived from
    the full stream (counters per event type, cycle/size histograms). *)

val default_capacity : int

val record : ?capacity:int -> unit -> recorder
(** Create a recorder and install it as the global sink. Also restarts
    correlation numbering so same-seed runs produce identical streams. *)

val stop : recorder -> unit
(** Uninstall the global sink (the recorder's contents stay readable). *)

val events : recorder -> event list
(** The retained events, oldest first. At most [capacity] events; the
    ring keeps the most recent ones. *)

val total : recorder -> int
(** Events recorded over the recorder's lifetime, including dropped. *)

val dropped : recorder -> int
(** Events that fell out of the ring ([total - capacity], floored). *)

val metrics : recorder -> Metrics.t

val clear : recorder -> unit
(** Reset the ring and metrics without uninstalling the sink. *)
