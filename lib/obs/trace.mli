(** Structured event tracing for the whole stack.

    Every layer emits typed events through a single global sink. By
    default the sink is a no-op (one flag load on the hot path; emission
    sites guard on {!enabled} so event payloads are never allocated when
    tracing is off). Installing a {!recorder} captures events into a
    bounded in-memory ring, stamps them with virtual time, and derives
    named counters and histograms from them.

    A recorded run is a replayable, assertable event stream: the
    determinism and differential test suites compare streams
    structurally, and [ashbench --trace] dumps them for inspection. *)

(** The trace event taxonomy. Field units: [bytes] are frame bytes,
    [cycles] are simulated CPU cycles, timestamps are virtual ns. *)
type kind =
  | Ev_scheduled of { at : int }  (** engine event enqueued for time [at] *)
  | Ev_fired  (** engine event dispatched *)
  | Pkt_tx of { nic : string; bytes : int }  (** frame left a NIC *)
  | Pkt_rx of { nic : string; bytes : int }  (** frame DMA'd into memory *)
  | Pkt_drop of { nic : string; reason : string }
      (** frame lost: "crc", "unbound", "no-buffer", "no-vc",
          "no-pktbuf", "dpf-miss", "too-big" *)
  | Wire_tx of { bytes : int; busy_until : int }
      (** link-level occupancy: the wire is busy until [busy_until] *)
  | Dpf_eval of { compiled : bool; matched : bool }
      (** one filter evaluation (compiled or tree-interpreted) *)
  | Dpf_match of { vc : int }  (** demux found a binding *)
  | Dpf_miss  (** demux exhausted all bindings *)
  | Upcall of { vc : int }  (** handler run at user level via upcall *)
  | User_deliver of { vc : int }  (** message handed to the application *)
  | Ash_dispatch of { id : int; vc : int }  (** ASH invoked in-kernel *)
  | Ash_commit of { id : int }
  | Ash_abort of { id : int }  (** voluntary abort: kernel path takes over *)
  | Ash_kill of { id : int; reason : string }  (** involuntary termination *)
  | Sandbox_violation of { reason : string }
      (** a VM run was killed (gas, memory fault, wild jump, ...) *)
  | Vm_run of {
      name : string;
      outcome : string;
      insns : int;
      check_insns : int;
      cycles : int;
    }  (** one interpreter run, with the paper's §V-D counters *)
  | Dilp_compile of { name : string; insns : int }
  | Dilp_run of { name : string; len : int }
  | Tcp_fast_hit  (** TCP fast-path handler committed *)
  | Tcp_fast_miss  (** segment fell back to the library path *)
  | Mark of string  (** free-form annotation *)

type event = { seq : int; ts : int; kind : kind }

val set_clock : (unit -> int) -> unit
(** Register the virtual-time source used to stamp events. The
    simulation engine calls this on creation; the default clock
    returns 0. *)

val swap_clock : (unit -> int) -> (unit -> int)
(** Install a clock and return the previously installed one. The
    simulation engine brackets event dispatch with this so that with
    several live engines, events are always stamped by the engine that
    is actually running (not the last one created). *)

val now : unit -> int

val enabled : unit -> bool
(** True when a sink is installed. Emission sites use this to skip
    event construction entirely when tracing is off. *)

val emit : kind -> unit
(** Send an event to the current sink (a no-op when tracing is off). *)

val set_sink : (kind -> unit) -> unit
val clear_sink : unit -> unit

val label : kind -> string
(** Stable dotted name of the event type, e.g. ["ash.dispatch"]. *)

val fields : kind -> (string * string) list
(** The event's payload as name/value pairs, for rendering. *)

val pp_kind : Format.formatter -> kind -> unit
val pp_event : Format.formatter -> event -> unit

(** {1 Recorder} *)

type recorder
(** A bounded ring of the most recent events plus metrics derived from
    the full stream (counters per event type, cycle/size histograms). *)

val default_capacity : int

val record : ?capacity:int -> unit -> recorder
(** Create a recorder and install it as the global sink. *)

val stop : recorder -> unit
(** Uninstall the global sink (the recorder's contents stay readable). *)

val events : recorder -> event list
(** The retained events, oldest first. At most [capacity] events; the
    ring keeps the most recent ones. *)

val total : recorder -> int
(** Events recorded over the recorder's lifetime, including dropped. *)

val dropped : recorder -> int
(** Events that fell out of the ring ([total - capacity], floored). *)

val metrics : recorder -> Metrics.t

val clear : recorder -> unit
(** Reset the ring and metrics without uninstalling the sink. *)
