type kind =
  | Ev_scheduled of { at : int }
  | Ev_fired
  | Pkt_tx of { nic : string; bytes : int }
  | Pkt_rx of { nic : string; bytes : int }
  | Pkt_drop of { nic : string; reason : string }
  | Wire_tx of { bytes : int; busy_until : int }
  | Dpf_eval of { compiled : bool; matched : bool }
  | Dpf_match of { vc : int }
  | Dpf_miss
  | Upcall of { vc : int }
  | User_deliver of { vc : int }
  | Ash_dispatch of { id : int; vc : int }
  | Ash_commit of { id : int }
  | Ash_abort of { id : int }
  | Ash_kill of { id : int; reason : string }
  | Sandbox_violation of { reason : string }
  | Vm_run of {
      name : string;
      outcome : string;
      insns : int;
      check_insns : int;
      cycles : int;
    }
  | Dilp_compile of { name : string; insns : int }
  | Dilp_run of { name : string; len : int }
  | Tcp_fast_hit
  | Tcp_fast_miss
  | Mark of string

type event = { seq : int; ts : int; kind : kind }

(* ---------------------------------------------------------------- *)
(* Global emission point                                             *)
(* ---------------------------------------------------------------- *)

(* Virtual-time source for event timestamps. The simulation engine
   registers its clock on creation (last engine created wins); before
   any engine exists events are stamped 0. *)
let clock : (unit -> int) ref = ref (fun () -> 0)
let set_clock f = clock := f

let swap_clock f =
  let prev = !clock in
  clock := f;
  prev

let now () = !clock ()

(* The sink is a single mutable function: when tracing is off, hot
   paths pay one flag load (emission sites guard on [enabled] so the
   event payload is never even allocated). *)
let sink : (kind -> unit) ref = ref ignore
let enabled_flag = ref false
let enabled () = !enabled_flag

let emit k = !sink k

let set_sink f =
  sink := f;
  enabled_flag := true

let clear_sink () =
  sink := ignore;
  enabled_flag := false

(* ---------------------------------------------------------------- *)
(* Labels and structured fields (shared by text and JSON dumps)      *)
(* ---------------------------------------------------------------- *)

let label = function
  | Ev_scheduled _ -> "engine.scheduled"
  | Ev_fired -> "engine.fired"
  | Pkt_tx _ -> "pkt.tx"
  | Pkt_rx _ -> "pkt.rx"
  | Pkt_drop _ -> "pkt.drop"
  | Wire_tx _ -> "wire.tx"
  | Dpf_eval _ -> "dpf.eval"
  | Dpf_match _ -> "dpf.match"
  | Dpf_miss -> "dpf.miss"
  | Upcall _ -> "kern.upcall"
  | User_deliver _ -> "kern.user_deliver"
  | Ash_dispatch _ -> "ash.dispatch"
  | Ash_commit _ -> "ash.commit"
  | Ash_abort _ -> "ash.abort"
  | Ash_kill _ -> "ash.kill"
  | Sandbox_violation _ -> "sandbox.violation"
  | Vm_run _ -> "vm.run"
  | Dilp_compile _ -> "dilp.compile"
  | Dilp_run _ -> "dilp.run"
  | Tcp_fast_hit -> "tcp.fast.hit"
  | Tcp_fast_miss -> "tcp.fast.miss"
  | Mark _ -> "mark"

let fields = function
  | Ev_scheduled { at } -> [ ("at", string_of_int at) ]
  | Ev_fired -> []
  | Pkt_tx { nic; bytes } | Pkt_rx { nic; bytes } ->
    [ ("nic", nic); ("bytes", string_of_int bytes) ]
  | Pkt_drop { nic; reason } -> [ ("nic", nic); ("reason", reason) ]
  | Wire_tx { bytes; busy_until } ->
    [ ("bytes", string_of_int bytes); ("busy_until", string_of_int busy_until) ]
  | Dpf_eval { compiled; matched } ->
    [ ("compiled", string_of_bool compiled);
      ("matched", string_of_bool matched) ]
  | Dpf_match { vc } -> [ ("vc", string_of_int vc) ]
  | Dpf_miss -> []
  | Upcall { vc } | User_deliver { vc } -> [ ("vc", string_of_int vc) ]
  | Ash_dispatch { id; vc } ->
    [ ("id", string_of_int id); ("vc", string_of_int vc) ]
  | Ash_commit { id } | Ash_abort { id } -> [ ("id", string_of_int id) ]
  | Ash_kill { id; reason } ->
    [ ("id", string_of_int id); ("reason", reason) ]
  | Sandbox_violation { reason } -> [ ("reason", reason) ]
  | Vm_run { name; outcome; insns; check_insns; cycles } ->
    [ ("name", name); ("outcome", outcome);
      ("insns", string_of_int insns);
      ("check_insns", string_of_int check_insns);
      ("cycles", string_of_int cycles) ]
  | Dilp_compile { name; insns } ->
    [ ("name", name); ("insns", string_of_int insns) ]
  | Dilp_run { name; len } ->
    [ ("name", name); ("len", string_of_int len) ]
  | Tcp_fast_hit | Tcp_fast_miss -> []
  | Mark m -> [ ("label", m) ]

let pp_kind ppf k =
  Format.pp_print_string ppf (label k);
  List.iter (fun (f, v) -> Format.fprintf ppf " %s=%s" f v) (fields k)

let pp_event ppf e =
  Format.fprintf ppf "[%10d] #%-6d %a" e.ts e.seq pp_kind e.kind

(* ---------------------------------------------------------------- *)
(* Recorder: bounded ring + derived metrics                          *)
(* ---------------------------------------------------------------- *)

type recorder = {
  cap : int;
  ring : event array;
  mutable total : int; (* events ever recorded; ring keeps the last cap *)
  metrics : Metrics.t;
}

let default_capacity = 65_536

let dummy_event = { seq = -1; ts = 0; kind = Ev_fired }

(* Counter/histogram derivation keeps the emission sites trivial: they
   describe what happened; accounting policy lives here. *)
let account m kind =
  let c name = Metrics.incr m name in
  match kind with
  | Ev_scheduled _ -> c "engine.scheduled"
  | Ev_fired -> c "engine.fired"
  | Pkt_tx { nic; _ } -> c ("pkt.tx." ^ nic)
  | Pkt_rx { nic; _ } -> c ("pkt.rx." ^ nic)
  | Pkt_drop { nic; reason } -> c ("pkt.drop." ^ nic ^ "." ^ reason)
  | Wire_tx { bytes; _ } ->
    c "wire.tx";
    Metrics.observe m "wire.tx.bytes" (float_of_int bytes)
  | Dpf_eval { compiled; matched } ->
    c (if compiled then "dpf.eval.compiled" else "dpf.eval.interpreted");
    c (if matched then "dpf.eval.matched" else "dpf.eval.rejected")
  | Dpf_match _ -> c "dpf.match"
  | Dpf_miss -> c "dpf.miss"
  | Upcall _ -> c "kern.upcall"
  | User_deliver _ -> c "kern.user_deliver"
  | Ash_dispatch _ -> c "ash.dispatch"
  | Ash_commit _ -> c "ash.commit"
  | Ash_abort _ -> c "ash.abort"
  | Ash_kill _ -> c "ash.kill"
  | Sandbox_violation _ -> c "sandbox.violation"
  | Vm_run { outcome; insns; check_insns; cycles; _ } ->
    c "vm.run";
    c ("vm.outcome." ^ outcome);
    Metrics.observe m "vm.cycles" (float_of_int cycles);
    Metrics.observe m "vm.insns" (float_of_int insns);
    if check_insns > 0 then
      Metrics.observe m "vm.check_insns" (float_of_int check_insns)
  | Dilp_compile { insns; _ } ->
    c "dilp.compile";
    Metrics.observe m "dilp.compile.insns" (float_of_int insns)
  | Dilp_run { len; _ } ->
    c "dilp.run";
    Metrics.observe m "dilp.run.bytes" (float_of_int len)
  | Tcp_fast_hit -> c "tcp.fast.hit"
  | Tcp_fast_miss -> c "tcp.fast.miss"
  | Mark _ -> c "mark"

let record ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.record: capacity must be positive";
  let r =
    {
      cap = capacity;
      ring = Array.make capacity dummy_event;
      total = 0;
      metrics = Metrics.create ();
    }
  in
  set_sink (fun kind ->
      let e = { seq = r.total; ts = now (); kind } in
      r.ring.(r.total mod r.cap) <- e;
      r.total <- r.total + 1;
      account r.metrics kind);
  r

let stop _r = clear_sink ()

let total r = r.total
let dropped r = max 0 (r.total - r.cap)

let events r =
  let n = min r.total r.cap in
  let first = r.total - n in
  List.init n (fun i -> r.ring.((first + i) mod r.cap))

let metrics r = r.metrics

let clear r =
  r.total <- 0;
  Metrics.clear r.metrics
