(* Closed drop-reason vocabulary: counters derived from drops cannot
   fragment on emission-site typos. Labels (below) are the historical
   strings. *)
type drop_reason =
  | Crc
  | Unbound
  | No_buffer
  | No_vc
  | No_pktbuf
  | Dpf_miss
  | Too_big
  | Queue_full
  | Dup_seq
  | Stale_seq
  | Repl_gap

let drop_reason_label = function
  | Crc -> "crc"
  | Unbound -> "unbound"
  | No_buffer -> "no-buffer"
  | No_vc -> "no-vc"
  | No_pktbuf -> "no-pktbuf"
  | Dpf_miss -> "dpf-miss"
  | Too_big -> "too-big"
  | Queue_full -> "queue-full"
  | Dup_seq -> "dup-seq"
  | Stale_seq -> "stale-seq"
  | Repl_gap -> "repl-gap"

(* Closed fault vocabulary for the deterministic injection layer
   (Ash_sim.Fault): same rationale as [drop_reason]. *)
type fault_kind =
  | F_drop
  | F_corrupt
  | F_truncate
  | F_duplicate
  | F_reorder
  | F_jitter

let fault_kind_label = function
  | F_drop -> "drop"
  | F_corrupt -> "corrupt"
  | F_truncate -> "truncate"
  | F_duplicate -> "duplicate"
  | F_reorder -> "reorder"
  | F_jitter -> "jitter"

let all_fault_kinds =
  [ F_drop; F_corrupt; F_truncate; F_duplicate; F_reorder; F_jitter ]

(* The causal stages one message passes through (the paper's Table 2/6
   decomposition). Every span event names one of these. *)
type stage =
  | Wire
  | Rx_dma
  | Demux
  | Ash_run
  | Pipe
  | Proto
  | Deliver
  | Reply

let stage_label = function
  | Wire -> "wire"
  | Rx_dma -> "rx-dma"
  | Demux -> "demux"
  | Ash_run -> "ash-run"
  | Pipe -> "pipe"
  | Proto -> "proto"
  | Deliver -> "deliver"
  | Reply -> "reply"

let all_stages =
  [ Wire; Rx_dma; Demux; Ash_run; Pipe; Proto; Deliver; Reply ]

type kind =
  | Ev_scheduled of { at : int }
  | Ev_fired
  | Pkt_tx of { nic : string; bytes : int }
  | Pkt_rx of { nic : string; bytes : int }
  | Pkt_drop of { nic : string; reason : drop_reason }
  | Wire_tx of { bytes : int; busy_until : int }
  | Dpf_eval of { compiled : bool; matched : bool }
  | Dpf_match of { vc : int }
  | Dpf_miss
  | Upcall of { vc : int }
  | User_deliver of { vc : int }
  | Ash_dispatch of { id : int; vc : int }
  | Ash_commit of { id : int }
  | Ash_abort of { id : int }
  | Ash_kill of { id : int; reason : string }
  | Sandbox_violation of { reason : string }
  | Vm_run of {
      name : string;
      outcome : string;
      insns : int;
      check_insns : int;
      cycles : int;
    }
  | Dilp_compile of { name : string; insns : int }
  | Dilp_run of { name : string; len : int }
  | Tcp_fast_hit
  | Tcp_fast_miss
  | Tcp_retransmit of { how : string; seq : int }
  | Mq_redelivery of { producer : int; seq : int; attempt : int }
  | Ash_download of {
      id : int;
      cache_hit : bool;
      checks_elided : int;
      static_bound : int option;
    }
  | Fault_injected of { nic : string; fault : fault_kind }
  | Ash_quarantine of { id : int; kills : int }
  | Ash_rearm of { id : int }
  | Span_begin of { corr : int; stage : stage; off : int }
  | Span_end of { corr : int; stage : stage; off : int; cycles : int }
  | Mark of string

type event = { seq : int; ts : int; corr : int; kind : kind }

(* ---------------------------------------------------------------- *)
(* Domain-local emission contexts                                    *)
(* ---------------------------------------------------------------- *)

(* All ambient trace state — clock, sink, enabled flag, correlation
   allocator — lives in a per-domain emission context instead of
   process globals, so engine shards running on separate OCaml domains
   never race on it. The main domain's context is the "root":
   recorders install there and it behaves exactly like the historical
   global state. Shard contexts (see [shard_buf]) buffer stamped
   events locally and allocate correlation ids from a strided sequence
   (shard s of N hands out s+1, s+1+N, ...), so id assignment depends
   only on the shard layout, never on how domains interleave. *)
type ctx = {
  mutable c_clock : unit -> int;
  mutable c_sink : kind -> unit;
  mutable c_sink_at : ts:int -> corr:int -> kind -> unit;
  mutable c_on : bool;
  c_is_root : bool; (* taps run here; false for shard buffers *)
  c_corr_first : int;
  c_corr_stride : int;
  mutable c_corr_count : int; (* ids allocated from this context *)
  mutable c_ambient : int;
}

let make_ctx ~first ~stride ~root =
  {
    c_clock = (fun () -> 0);
    c_sink = ignore;
    c_sink_at = (fun ~ts:_ ~corr:_ _ -> ());
    c_on = false;
    c_is_root = root;
    c_corr_first = first;
    c_corr_stride = stride;
    c_corr_count = 0;
    c_ambient = 0;
  }

(* The root context lives on the main domain only: a worker domain's
   default context is non-root, so taps (a main-domain-only mutable
   list) are never touched from a worker. Shard events still reach the
   taps — the cluster's barrier merge re-emits them into the root
   context via [emit_at]. *)
let ctx_key : ctx Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
    make_ctx ~first:1 ~stride:1 ~root:(Domain.is_main_domain ()))

let cur () = Domain.DLS.get ctx_key
let set_clock f = (cur ()).c_clock <- f

let swap_clock f =
  let c = cur () in
  let prev = c.c_clock in
  c.c_clock <- f;
  prev

let now () = (cur ()).c_clock ()

(* ---------------------------------------------------------------- *)
(* Taps                                                              *)
(* ---------------------------------------------------------------- *)

(* A tap is a lightweight secondary consumer of the root event stream
   (the flight recorder). Taps live beside the recorder sink: they see
   every event the root context emits — including shard events merged
   in at epoch barriers — whether or not a recorder is installed, so a
   black-box recorder can stay armed while [record]/[stop] come and
   go. Main-domain only: only root contexts dispatch to taps. *)
type tap_id = int

let taps : (tap_id * (ts:int -> corr:int -> kind -> unit)) list ref = ref []
let tap_seq = ref 0

let add_tap f =
  Stdlib.incr tap_seq;
  taps := !taps @ [ (!tap_seq, f) ];
  !tap_seq

let remove_tap id = taps := List.filter (fun (i, _) -> i <> id) !taps
let run_taps ~ts ~corr k = List.iter (fun (_, f) -> f ~ts ~corr k) !taps

(* Emission sites use [enabled] to skip event construction entirely;
   an armed tap makes the stream live even without a recorder. *)
let enabled () =
  let c = cur () in
  c.c_on || (c.c_is_root && !taps != [])

let emit k =
  let c = cur () in
  c.c_sink k;
  if c.c_is_root && !taps != [] then
    run_taps ~ts:(c.c_clock ()) ~corr:c.c_ambient k

let emit_at ~ts ~corr k =
  let c = cur () in
  c.c_sink_at ~ts ~corr k;
  if c.c_is_root && !taps != [] then run_taps ~ts ~corr k

let set_sink f =
  let c = cur () in
  c.c_sink <- f;
  c.c_sink_at <- (fun ~ts:_ ~corr:_ k -> f k);
  c.c_on <- true

let clear_sink () =
  let c = cur () in
  c.c_sink <- ignore;
  c.c_sink_at <- (fun ~ts:_ ~corr:_ _ -> ());
  c.c_on <- false

(* ---------------------------------------------------------------- *)
(* Correlation ids and span sampling                                 *)
(* ---------------------------------------------------------------- *)

(* A correlation id names one message's causal chain. It is allocated
   when an application initiates a send (or, failing that, at NIC
   transmit), travels through the engine's event queue (each scheduled
   event captures the ambient id and restores it around dispatch), and
   stamps every event emitted while handling the message. Id 0 means
   "no message in flight". *)

let new_corr () =
  let c = cur () in
  c.c_corr_count <- c.c_corr_count + 1;
  c.c_corr_first + ((c.c_corr_count - 1) * c.c_corr_stride)

let current_corr () = (cur ()).c_ambient
let set_corr v = (cur ()).c_ambient <- v

let ensure_corr () =
  let c = cur () in
  if c.c_ambient = 0 then c.c_ambient <- new_corr ();
  c.c_ambient

let with_corr v f =
  let c = cur () in
  let prev = c.c_ambient in
  c.c_ambient <- v;
  Fun.protect ~finally:(fun () -> c.c_ambient <- prev) f

let reset_corr () =
  let c = cur () in
  c.c_corr_count <- 0;
  c.c_ambient <- 0

(* Span sampling: record every Nth message's spans. Counters and
   non-span events stay exact; only [Span_begin]/[Span_end] emission is
   gated (all endpoints of one message share the same verdict, so pairs
   never tear). *)
let span_sample_every = ref 1

let set_span_sample n =
  if n < 1 then invalid_arg "Trace.set_span_sample: n must be >= 1";
  span_sample_every := n

let span_sample () = !span_sample_every

let span_on corr =
  enabled () && corr > 0 && (corr - 1) mod !span_sample_every = 0

(* ---------------------------------------------------------------- *)
(* Shard buffers                                                     *)
(* ---------------------------------------------------------------- *)

(* A shard buffer is the emission context used while one engine shard
   executes (possibly on a worker domain): events are stamped with the
   shard's clock and ambient correlation id and appended to a local
   growable array. At each epoch barrier the cluster merges all shard
   buffers by (ts, shard index) and re-emits the events into the root
   context with [emit_at], so the recorded stream is a deterministic
   function of the simulation alone — independent of the domain
   count. *)
type stamped = { st_ts : int; st_corr : int; st_kind : kind }

type shard_buf = {
  sb_ctx : ctx;
  mutable sb_items : stamped array;
  mutable sb_len : int;
}

let dummy_stamped = { st_ts = 0; st_corr = 0; st_kind = Ev_fired }

let shard_buf ~shard ~shards =
  if shards < 1 || shard < 0 || shard >= shards then
    invalid_arg "Trace.shard_buf: shard out of range";
  let sb =
    {
      sb_ctx = make_ctx ~first:(shard + 1) ~stride:shards ~root:false;
      sb_items = Array.make 256 dummy_stamped;
      sb_len = 0;
    }
  in
  let push st =
    if sb.sb_len = Array.length sb.sb_items then begin
      let bigger = Array.make (2 * sb.sb_len) dummy_stamped in
      Array.blit sb.sb_items 0 bigger 0 sb.sb_len;
      sb.sb_items <- bigger
    end;
    sb.sb_items.(sb.sb_len) <- st;
    sb.sb_len <- sb.sb_len + 1
  in
  let c = sb.sb_ctx in
  c.c_sink <-
    (fun k -> push { st_ts = c.c_clock (); st_corr = c.c_ambient; st_kind = k });
  c.c_sink_at <-
    (fun ~ts ~corr k -> push { st_ts = ts; st_corr = corr; st_kind = k });
  sb

let shard_set_clock sb f = sb.sb_ctx.c_clock <- f
let shard_set_enabled sb on = sb.sb_ctx.c_on <- on

let with_shard sb f =
  let prev = Domain.DLS.get ctx_key in
  Domain.DLS.set ctx_key sb.sb_ctx;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ctx_key prev) f

let shard_len sb = sb.sb_len

let shard_get sb i =
  let st = sb.sb_items.(i) in
  (st.st_ts, st.st_corr, st.st_kind)

let shard_clear sb =
  if sb.sb_len > 0 then Array.fill sb.sb_items 0 sb.sb_len dummy_stamped;
  sb.sb_len <- 0

(* ---------------------------------------------------------------- *)
(* Labels and structured fields (shared by text and JSON dumps)      *)
(* ---------------------------------------------------------------- *)

let label = function
  | Ev_scheduled _ -> "engine.scheduled"
  | Ev_fired -> "engine.fired"
  | Pkt_tx _ -> "pkt.tx"
  | Pkt_rx _ -> "pkt.rx"
  | Pkt_drop _ -> "pkt.drop"
  | Wire_tx _ -> "wire.tx"
  | Dpf_eval _ -> "dpf.eval"
  | Dpf_match _ -> "dpf.match"
  | Dpf_miss -> "dpf.miss"
  | Upcall _ -> "kern.upcall"
  | User_deliver _ -> "kern.user_deliver"
  | Ash_dispatch _ -> "ash.dispatch"
  | Ash_commit _ -> "ash.commit"
  | Ash_abort _ -> "ash.abort"
  | Ash_kill _ -> "ash.kill"
  | Sandbox_violation _ -> "sandbox.violation"
  | Vm_run _ -> "vm.run"
  | Dilp_compile _ -> "dilp.compile"
  | Dilp_run _ -> "dilp.run"
  | Tcp_fast_hit -> "tcp.fast.hit"
  | Tcp_fast_miss -> "tcp.fast.miss"
  | Tcp_retransmit _ -> "tcp.retransmit"
  | Mq_redelivery _ -> "mq.redelivery"
  | Ash_download _ -> "ash.download"
  | Fault_injected _ -> "fault.injected"
  | Ash_quarantine _ -> "ash.quarantine"
  | Ash_rearm _ -> "ash.rearm"
  | Span_begin _ -> "span.begin"
  | Span_end _ -> "span.end"
  | Mark _ -> "mark"

let fields = function
  | Ev_scheduled { at } -> [ ("at", string_of_int at) ]
  | Ev_fired -> []
  | Pkt_tx { nic; bytes } | Pkt_rx { nic; bytes } ->
    [ ("nic", nic); ("bytes", string_of_int bytes) ]
  | Pkt_drop { nic; reason } ->
    [ ("nic", nic); ("reason", drop_reason_label reason) ]
  | Wire_tx { bytes; busy_until } ->
    [ ("bytes", string_of_int bytes); ("busy_until", string_of_int busy_until) ]
  | Dpf_eval { compiled; matched } ->
    [ ("compiled", string_of_bool compiled);
      ("matched", string_of_bool matched) ]
  | Dpf_match { vc } -> [ ("vc", string_of_int vc) ]
  | Dpf_miss -> []
  | Upcall { vc } | User_deliver { vc } -> [ ("vc", string_of_int vc) ]
  | Ash_dispatch { id; vc } ->
    [ ("id", string_of_int id); ("vc", string_of_int vc) ]
  | Ash_commit { id } | Ash_abort { id } -> [ ("id", string_of_int id) ]
  | Ash_kill { id; reason } ->
    [ ("id", string_of_int id); ("reason", reason) ]
  | Sandbox_violation { reason } -> [ ("reason", reason) ]
  | Vm_run { name; outcome; insns; check_insns; cycles } ->
    [ ("name", name); ("outcome", outcome);
      ("insns", string_of_int insns);
      ("check_insns", string_of_int check_insns);
      ("cycles", string_of_int cycles) ]
  | Dilp_compile { name; insns } ->
    [ ("name", name); ("insns", string_of_int insns) ]
  | Dilp_run { name; len } ->
    [ ("name", name); ("len", string_of_int len) ]
  | Tcp_fast_hit | Tcp_fast_miss -> []
  | Tcp_retransmit { how; seq } ->
    [ ("how", how); ("seq", string_of_int seq) ]
  | Mq_redelivery { producer; seq; attempt } ->
    [ ("producer", string_of_int producer); ("seq", string_of_int seq);
      ("attempt", string_of_int attempt) ]
  | Ash_download { id; cache_hit; checks_elided; static_bound } ->
    [ ("id", string_of_int id); ("cache_hit", string_of_bool cache_hit);
      ("checks_elided", string_of_int checks_elided);
      ("static_bound",
       match static_bound with None -> "none" | Some b -> string_of_int b) ]
  | Fault_injected { nic; fault } ->
    [ ("nic", nic); ("fault", fault_kind_label fault) ]
  | Ash_quarantine { id; kills } ->
    [ ("id", string_of_int id); ("kills", string_of_int kills) ]
  | Ash_rearm { id } -> [ ("id", string_of_int id) ]
  | Span_begin { corr; stage; off } ->
    [ ("corr", string_of_int corr); ("stage", stage_label stage);
      ("off", string_of_int off) ]
  | Span_end { corr; stage; off; cycles } ->
    [ ("corr", string_of_int corr); ("stage", stage_label stage);
      ("off", string_of_int off); ("cycles", string_of_int cycles) ]
  | Mark m -> [ ("label", m) ]

let pp_kind ppf k =
  Format.pp_print_string ppf (label k);
  List.iter (fun (f, v) -> Format.fprintf ppf " %s=%s" f v) (fields k)

let pp_event ppf e =
  Format.fprintf ppf "[%10d] #%-6d %a" e.ts e.seq pp_kind e.kind

(* ---------------------------------------------------------------- *)
(* Recorder: bounded ring + derived metrics                          *)
(* ---------------------------------------------------------------- *)

type recorder = {
  cap : int;
  ring : event array;
  mutable total : int; (* events ever recorded; ring keeps the last cap *)
  metrics : Metrics.t;
}

let default_capacity = 65_536

let dummy_event = { seq = -1; ts = 0; corr = 0; kind = Ev_fired }

(* Counter/histogram derivation keeps the emission sites trivial: they
   describe what happened; accounting policy lives here.

   [account] is staged: the outer call (once per recorder) interns a
   live cell for every known counter and histogram, so the per-event
   inner function bumps refs directly — no string hashing, no name
   allocation. Unknown names (test NICs, future outcomes) fall back to
   the by-name path. *)
let account m =
  let c = Metrics.counter_ref m in
  let h = Metrics.histo_ref m in
  let scheduled = c "engine.scheduled" in
  let fired = c "engine.fired" in
  let tx_an2 = c "pkt.tx.an2" in
  let tx_eth = c "pkt.tx.eth" in
  let rx_an2 = c "pkt.rx.an2" in
  let rx_eth = c "pkt.rx.eth" in
  let wire_tx = c "wire.tx" in
  let wire_tx_bytes = h "wire.tx.bytes" in
  let dpf_compiled = c "dpf.eval.compiled" in
  let dpf_interpreted = c "dpf.eval.interpreted" in
  let dpf_matched = c "dpf.eval.matched" in
  let dpf_rejected = c "dpf.eval.rejected" in
  let dpf_match = c "dpf.match" in
  let dpf_miss = c "dpf.miss" in
  let upcall = c "kern.upcall" in
  let user_deliver = c "kern.user_deliver" in
  let ash_dispatch = c "ash.dispatch" in
  let ash_commit = c "ash.commit" in
  let ash_abort = c "ash.abort" in
  let ash_kill = c "ash.kill" in
  let sandbox_violation = c "sandbox.violation" in
  let vm_run = c "vm.run" in
  let vm_commit = c "vm.outcome.commit" in
  let vm_abort = c "vm.outcome.abort" in
  let vm_return = c "vm.outcome.return" in
  let vm_kill = c "vm.outcome.kill" in
  let vm_cycles = h "vm.cycles" in
  let vm_insns = h "vm.insns" in
  let vm_check_insns = h "vm.check_insns" in
  let dilp_compile = c "dilp.compile" in
  let dilp_compile_insns = h "dilp.compile.insns" in
  let dilp_run = c "dilp.run" in
  let dilp_run_bytes = h "dilp.run.bytes" in
  let tcp_hit = c "tcp.fast.hit" in
  let tcp_miss = c "tcp.fast.miss" in
  let tcp_rexmit = c "tcp.retransmit" in
  let tcp_rexmit_timeout = c "tcp.retransmit.timeout" in
  let tcp_rexmit_fast = c "tcp.retransmit.fast" in
  let mq_redelivery = c "mq.redelivery" in
  let download = c "ash.download" in
  let cache_hit = c "ash.cache.hit" in
  let cache_miss = c "ash.cache.miss" in
  let absint_elided = c "ash.absint.checks_elided" in
  let absint_bounded = c "ash.absint.static_bounded" in
  let fault_injected = c "fault.injected" in
  let drops_fault = c "drops.fault.drop" in
  let fault_cell =
    let drop = c "fault.drop" in
    let corrupt = c "fault.corrupt" in
    let truncate = c "fault.truncate" in
    let duplicate = c "fault.duplicate" in
    let reorder = c "fault.reorder" in
    let jitter = c "fault.jitter" in
    function
    | F_drop -> drop
    | F_corrupt -> corrupt
    | F_truncate -> truncate
    | F_duplicate -> duplicate
    | F_reorder -> reorder
    | F_jitter -> jitter
  in
  let quarantine = c "ash.quarantine" in
  let rearm = c "ash.rearm" in
  let mark = c "mark" in
  let span_cell =
    let wire = c "span.wire" in
    let rx_dma = c "span.rx-dma" in
    let demux = c "span.demux" in
    let ash_run = c "span.ash-run" in
    let pipe = c "span.pipe" in
    let proto = c "span.proto" in
    let deliver = c "span.deliver" in
    let reply = c "span.reply" in
    function
    | Wire -> wire
    | Rx_dma -> rx_dma
    | Demux -> demux
    | Ash_run -> ash_run
    | Pipe -> pipe
    | Proto -> proto
    | Deliver -> deliver
    | Reply -> reply
  in
  let bump r = Stdlib.incr r in
  fun kind ->
    match kind with
    | Ev_scheduled _ -> bump scheduled
    | Ev_fired -> bump fired
    | Pkt_tx { nic = "an2"; _ } -> bump tx_an2
    | Pkt_tx { nic = "eth"; _ } -> bump tx_eth
    | Pkt_tx { nic; _ } -> Metrics.incr m ("pkt.tx." ^ nic)
    | Pkt_rx { nic = "an2"; _ } -> bump rx_an2
    | Pkt_rx { nic = "eth"; _ } -> bump rx_eth
    | Pkt_rx { nic; _ } -> Metrics.incr m ("pkt.rx." ^ nic)
    | Pkt_drop { nic; reason } ->
      (* The unified drop namespace: drops.<layer>.<reason>, where the
         layer is the dropping NIC/device name ("an2", "eth", "switch")
         and the reason is the closed [drop_reason] vocabulary. Fault
         losses land under drops.fault.drop below. *)
      Metrics.incr m ("drops." ^ nic ^ "." ^ drop_reason_label reason)
    | Wire_tx { bytes; _ } ->
      bump wire_tx;
      Metrics.observe_ref wire_tx_bytes (float_of_int bytes)
    | Dpf_eval { compiled; matched } ->
      bump (if compiled then dpf_compiled else dpf_interpreted);
      bump (if matched then dpf_matched else dpf_rejected)
    | Dpf_match _ -> bump dpf_match
    | Dpf_miss -> bump dpf_miss
    | Upcall _ -> bump upcall
    | User_deliver _ -> bump user_deliver
    | Ash_dispatch _ -> bump ash_dispatch
    | Ash_commit _ -> bump ash_commit
    | Ash_abort _ -> bump ash_abort
    | Ash_kill _ -> bump ash_kill
    | Sandbox_violation _ -> bump sandbox_violation
    | Vm_run { outcome; insns; check_insns; cycles; _ } ->
      bump vm_run;
      (match outcome with
       | "commit" -> bump vm_commit
       | "abort" -> bump vm_abort
       | "return" -> bump vm_return
       | "kill" -> bump vm_kill
       | o -> Metrics.incr m ("vm.outcome." ^ o));
      Metrics.observe_ref vm_cycles (float_of_int cycles);
      Metrics.observe_ref vm_insns (float_of_int insns);
      if check_insns > 0 then
        Metrics.observe_ref vm_check_insns (float_of_int check_insns)
    | Dilp_compile { insns; _ } ->
      bump dilp_compile;
      Metrics.observe_ref dilp_compile_insns (float_of_int insns)
    | Dilp_run { len; _ } ->
      bump dilp_run;
      Metrics.observe_ref dilp_run_bytes (float_of_int len)
    | Tcp_fast_hit -> bump tcp_hit
    | Tcp_fast_miss -> bump tcp_miss
    | Tcp_retransmit { how; _ } ->
      bump tcp_rexmit;
      (match how with
       | "timeout" -> bump tcp_rexmit_timeout
       | "fast" -> bump tcp_rexmit_fast
       | h -> Metrics.incr m ("tcp.retransmit." ^ h))
    | Mq_redelivery _ -> bump mq_redelivery
    | Ash_download { cache_hit = hit; checks_elided; static_bound; _ } ->
      bump download;
      bump (if hit then cache_hit else cache_miss);
      absint_elided := !absint_elided + checks_elided;
      if static_bound <> None then bump absint_bounded
    | Fault_injected { fault; _ } ->
      bump fault_injected;
      bump (fault_cell fault);
      if fault = F_drop then bump drops_fault
    | Ash_quarantine _ -> bump quarantine
    | Ash_rearm _ -> bump rearm
    | Span_begin _ -> ()
    | Span_end { stage; _ } -> bump (span_cell stage)
    | Mark _ -> bump mark

let record ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.record: capacity must be positive";
  (* Restart correlation numbering with the recorder so same-seed runs
     produce identical streams (test_determinism compares kinds, which
     now embed correlation ids). *)
  reset_corr ();
  let r =
    {
      cap = capacity;
      ring = Array.make capacity dummy_event;
      total = 0;
      metrics = Metrics.create ();
    }
  in
  let acct = account r.metrics in
  let log ~ts ~corr kind =
    let e = { seq = r.total; ts; corr; kind } in
    r.ring.(r.total mod r.cap) <- e;
    r.total <- r.total + 1;
    acct kind
  in
  let c = cur () in
  c.c_sink <- (fun kind -> log ~ts:(c.c_clock ()) ~corr:c.c_ambient kind);
  c.c_sink_at <- log;
  c.c_on <- true;
  r

let stop _r = clear_sink ()

let total r = r.total
let dropped r = max 0 (r.total - r.cap)

let events r =
  let n = min r.total r.cap in
  let first = r.total - n in
  List.init n (fun i -> r.ring.((first + i) mod r.cap))

let metrics r = r.metrics

let clear r =
  r.total <- 0;
  Metrics.clear r.metrics
