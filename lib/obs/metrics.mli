(** Named counters and value histograms with percentile summaries. *)

type t

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
val counter : t -> string -> int
(** Reading an unknown counter returns 0. *)

val counter_ref : t -> string -> int ref
(** The live cell behind a counter (created at 0 on first use). Hot
    emission paths hold the ref and bump it directly, skipping the
    per-event name hash. *)

type histo

val histo_ref : t -> string -> histo
(** Same interning for histograms: the returned handle feeds
    {!observe_ref} without a per-sample table lookup. *)

val observe_ref : histo -> float -> unit

val counters : t -> (string * int) list
(** All counters, sorted by name (deterministic dump order). *)

val observe : t -> string -> float -> unit
(** Add a sample to the named histogram (created on first use). *)

type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summary_of : float list -> summary option
(** [None] on the empty list; a single sample is its own percentile. *)

val histogram : t -> string -> summary option
val histograms : t -> (string * summary) list
(** All non-empty histograms, sorted by name. *)

val clear : t -> unit

(** {1 Gauges}

    A gauge is a registered read function sampled on demand (queue
    depth, busy backlog, current RTO). Registration is last-wins:
    registering an existing name replaces the previous closure, so a
    component re-created under the same name never double-reports. *)

val register_gauge : t -> string -> (unit -> float) -> unit
val unregister_gauge : t -> string -> unit

val gauge : t -> string -> float option
(** Sample one gauge; [None] when unregistered. *)

val gauges : t -> (string * float) list
(** Sample every registered gauge, sorted by name. *)

val pp_summary : Format.formatter -> summary -> unit
