(** Fold a recorded trace into the paper's attribution tables.

    Two views of one stream: per-message latency decomposed into causal
    stages (the paper's Table 2/6 rows, with p50/p99 per stage and the
    dominant stage flagged), and per-handler cost profiles (dispatch
    and outcome counts, VM cycles split into sandbox checks vs. payload
    vs. pipe words, download-cache hits). *)

type stage_row = {
  stage : Trace.stage;
  spans : int;  (** intervals observed for this stage *)
  messages : int;  (** messages that passed this stage *)
  p50_ns : float;  (** percentiles over per-message stage totals *)
  p99_ns : float;
  mean_ns : float;
  total_ns : int;
  total_cycles : int;  (** CPU cycles metered inside this stage's spans *)
  dominant_in : int;  (** messages where this stage dominates *)
}

type message = {
  corr : int;
  e2e_ns : int;  (** first span open to last span close *)
  covered_ns : int;  (** union of span intervals (no double counting) *)
  dominant : Trace.stage option;
  stage_ns : (Trace.stage * int) list;  (** causal order *)
}

type ash_row = {
  id : int;
  downloads : int;
  cache_hits : int;  (** downloads served from the handler cache *)
  dispatches : int;
  commits : int;
  aborts : int;
  kills : int;
  vm_runs : int;  (** handler executions attributed (one per window) *)
  vm_cycles : int;  (** the handler's own VM cycles *)
  vm_insns : int;
  vm_check_insns : int;
  sandbox_cycles_est : int;
      (** [vm_cycles * vm_check_insns / vm_insns]: cycles spent in
          sandbox checks, assuming uniform per-insn cost *)
  payload_cycles_est : int;  (** [vm_cycles - sandbox_cycles_est] *)
  pipe_runs : int;  (** DILP executions inside this handler's windows *)
  pipe_bytes : int;
  pipe_cycles : int;  (** VM cycles of pipes run mid-handler *)
}

type t = {
  messages : message list;  (** sorted by correlation id *)
  stages : stage_row list;  (** causal order, only stages observed *)
  ashes : ash_row list;  (** sorted by handler id *)
  spans : Span.interval list;
  unclosed : (int * Trace.stage * int) list;
}

val of_events : Trace.event list -> t
val of_recorder : Trace.recorder -> t

val pp : Format.formatter -> t -> unit
(** Render the per-stage latency table (p50/p99/mean in µs, plus an
    end-to-end row) and the per-ASH profile table. *)
