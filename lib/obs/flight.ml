type trigger =
  | Quarantine
  | Queue_full_burst
  | Retransmit_storm
  | Redelivery_storm
  | Switch_drop_spike
  | Stalled_epoch

let trigger_label = function
  | Quarantine -> "quarantine"
  | Queue_full_burst -> "queue-full-burst"
  | Retransmit_storm -> "retransmit-storm"
  | Redelivery_storm -> "redelivery-storm"
  | Switch_drop_spike -> "switch-drop-spike"
  | Stalled_epoch -> "stalled-epoch"

type config = {
  ring_capacity : int;
  metric_window : int;
  queue_full_burst : int;
  retransmit_storm : int;
  redelivery_storm : int;
  switch_drop_spike : int;
  burst_window_ns : int;
  stall_ns : int;
  cooldown_ns : int;
  max_dumps : int;
  keep_engine_events : bool;
}

let default_config =
  {
    ring_capacity = 2048;
    metric_window = 32;
    queue_full_burst = 8;
    retransmit_storm = 12;
    redelivery_storm = 12;
    switch_drop_spike = 8;
    burst_window_ns = 1_000_000;
    stall_ns = 50_000_000;
    cooldown_ns = 5_000_000;
    max_dumps = 8;
    keep_engine_events = false;
  }

type dump = {
  d_trigger : trigger;
  d_ts : int;
  d_event : Trace.event option;
  d_events : Trace.event list;
  d_spans : Span.interval list;
  d_metrics : Timeseries.view list;
  d_interval_ns : int;
}

(* A windowed burst counter: [count] events since [start]; an event
   past the window restarts it. Cheap and deterministic — the window
   slides on event arrival, not on a timer. *)
type burst = { mutable b_start : int; mutable b_count : int }

type t = {
  cfg : config;
  timeseries : Timeseries.t option;  (* None = ambient at dump time *)
  ring : Trace.event array;
  mutable total : int;  (* events ever pushed into the ring *)
  qf : burst;
  rexmit : burst;
  redeliv : burst;
  swdrop : burst;
  mutable last_ts : int;  (* clock-reset detection *)
  mutable last_progress : int;  (* -1 until the first progress event *)
  mutable last_dump_ts : int;  (* cooldown anchor; min_int before any *)
  mutable fired : int;
  mutable dumps : dump list;  (* newest first, at most max_dumps *)
  mutable tap : Trace.tap_id option;
}

let dummy_event =
  { Trace.seq = -1; ts = 0; corr = 0; kind = Trace.Ev_fired }

let push t (e : Trace.event) =
  t.ring.(t.total mod t.cfg.ring_capacity) <- e;
  t.total <- t.total + 1

let ring_events t =
  let n = min t.total t.cfg.ring_capacity in
  let first = t.total - n in
  List.init n (fun i -> t.ring.((first + i) mod t.cfg.ring_capacity))

let reset_windows t ~ts =
  t.qf.b_start <- ts;
  t.qf.b_count <- 0;
  t.rexmit.b_start <- ts;
  t.rexmit.b_count <- 0;
  t.redeliv.b_start <- ts;
  t.redeliv.b_count <- 0;
  t.swdrop.b_start <- ts;
  t.swdrop.b_count <- 0;
  t.last_progress <- -1;
  t.last_dump_ts <- min_int / 2

(* Bump a burst window; true when the (enabled) threshold is reached.
   The count resets after a fire so a sustained burst re-arms from
   zero instead of firing on every subsequent event. *)
let bump t b ~ts ~threshold =
  if threshold <= 0 then false
  else begin
    if ts - b.b_start > t.cfg.burst_window_ns then begin
      b.b_start <- ts;
      b.b_count <- 0
    end;
    b.b_count <- b.b_count + 1;
    if b.b_count >= threshold then begin
      b.b_count <- 0;
      b.b_start <- ts;
      true
    end
    else false
  end

let metric_window t =
  let ts =
    match t.timeseries with Some x -> Some x | None -> Timeseries.current ()
  in
  match ts with
  | None -> ([], Timeseries.default_interval_ns)
  | Some x ->
    (Timeseries.window x ~last:t.cfg.metric_window, Timeseries.interval_ns x)

let fire t trigger ~ts ~event =
  if ts - t.last_dump_ts >= t.cfg.cooldown_ns then begin
    t.last_dump_ts <- ts;
    t.fired <- t.fired + 1;
    let events = ring_events t in
    let metrics, interval_ns = metric_window t in
    let d =
      {
        d_trigger = trigger;
        d_ts = ts;
        d_event = event;
        d_events = events;
        d_spans = Span.intervals events;
        d_metrics = metrics;
        d_interval_ns = interval_ns;
      }
    in
    let keep = t.cfg.max_dumps - 1 in
    t.dumps <- d :: (if keep <= 0 then [] else List.filteri (fun i _ -> i < keep) t.dumps)
  end

(* Delivery progress: the events that mean "messages are still getting
   through". Their absence while other events flow is the stall
   signature. *)
let is_progress (k : Trace.kind) =
  match k with
  | Trace.Pkt_rx _ | Trace.User_deliver _ | Trace.Upcall _
  | Trace.Ash_dispatch _ | Trace.Ash_commit _ | Trace.Dpf_match _
  | Trace.Tcp_fast_hit ->
    true
  | _ -> false

let check_stall t ~ts ~prev ~event =
  if
    t.cfg.stall_ns > 0 && t.last_progress >= 0
    && ts - t.last_progress >= t.cfg.stall_ns
  then
    if prev >= 0 && ts - prev >= t.cfg.stall_ns then
      (* The recorder itself saw nothing at all for the whole window:
         the simulation fast-forwarded over idle virtual time (a long
         RTO backoff, TIME_WAIT expiry, a quiet phase between
         scenarios). Nothing was trying to make progress, so that is
         not a stall — re-anchor and keep watching. A real stall has
         events or barrier heartbeats landing *inside* the window with
         no progress among them. *)
      t.last_progress <- ts
    else begin
      (* Re-anchor first: one stall yields one dump, and recovery gives
         the next stall a fresh budget. *)
      t.last_progress <- ts;
      fire t Stalled_epoch ~ts ~event
    end

let on_event t ~ts ~corr (k : Trace.kind) =
  (* Virtual time running backwards means a new engine started in this
     process: restart every window rather than mis-firing on deltas
     spanning two runs. *)
  if ts < t.last_ts then reset_windows t ~ts;
  let prev = t.last_ts in
  t.last_ts <- ts;
  let e = { Trace.seq = t.total; ts; corr; kind = k } in
  let keep_in_ring =
    match k with
    | Trace.Ev_scheduled _ | Trace.Ev_fired -> t.cfg.keep_engine_events
    | _ -> true
  in
  if keep_in_ring then push t e;
  if is_progress k then t.last_progress <- ts
  else check_stall t ~ts ~prev ~event:(Some e);
  match k with
  | Trace.Ash_quarantine _ -> fire t Quarantine ~ts ~event:(Some e)
  | Trace.Pkt_drop { nic = "switch"; _ } ->
    if bump t t.swdrop ~ts ~threshold:t.cfg.switch_drop_spike then
      fire t Switch_drop_spike ~ts ~event:(Some e)
  | Trace.Pkt_drop { reason = Trace.Queue_full; _ } ->
    if bump t t.qf ~ts ~threshold:t.cfg.queue_full_burst then
      fire t Queue_full_burst ~ts ~event:(Some e)
  | Trace.Tcp_retransmit _ ->
    if bump t t.rexmit ~ts ~threshold:t.cfg.retransmit_storm then
      fire t Retransmit_storm ~ts ~event:(Some e)
  | Trace.Mq_redelivery _ ->
    if bump t t.redeliv ~ts ~threshold:t.cfg.redelivery_storm then
      fire t Redelivery_storm ~ts ~event:(Some e)
  | _ -> ()

(* Armed recorders, main domain only: the cluster's epoch barrier
   heartbeats every one of them so stalls are caught even between
   merged events. *)
let armed : t list ref = ref []

let arm ?(config = default_config) ?timeseries () =
  if config.ring_capacity < 1 then invalid_arg "Flight.arm: ring_capacity";
  let t =
    {
      cfg = config;
      timeseries;
      ring = Array.make config.ring_capacity dummy_event;
      total = 0;
      qf = { b_start = 0; b_count = 0 };
      rexmit = { b_start = 0; b_count = 0 };
      redeliv = { b_start = 0; b_count = 0 };
      swdrop = { b_start = 0; b_count = 0 };
      last_ts = min_int;
      last_progress = -1;
      last_dump_ts = min_int / 2;
      fired = 0;
      dumps = [];
      tap = None;
    }
  in
  t.tap <- Some (Trace.add_tap (fun ~ts ~corr k -> on_event t ~ts ~corr k));
  armed := !armed @ [ t ];
  t

let disarm t =
  match t.tap with
  | None -> ()
  | Some id ->
    Trace.remove_tap id;
    t.tap <- None;
    armed := List.filter (fun x -> x != t) !armed

let heartbeat t ~now =
  if now < t.last_ts then reset_windows t ~ts:now;
  let prev = t.last_ts in
  t.last_ts <- max t.last_ts now;
  check_stall t ~ts:now ~prev ~event:None

let heartbeat_all ~now = List.iter (fun t -> heartbeat t ~now) !armed

let dumps t = List.rev t.dumps
let dump_count t = t.fired

let dump_to_json d =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"ashs-flight-dump/1\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"trigger\": \"%s\",\n  \"ts\": %d,\n"
       (trigger_label d.d_trigger) d.d_ts);
  Buffer.add_string b "  \"event\": ";
  (match d.d_event with
   | None -> Buffer.add_string b "null"
   | Some e -> Buffer.add_string b (Dump.event_to_json e));
  Buffer.add_string b ",\n  \"events\": [";
  List.iteri
    (fun i e ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b "\n    ";
       Buffer.add_string b (Dump.event_to_json e))
    d.d_events;
  Buffer.add_string b "\n  ],\n  \"spans\": [";
  List.iteri
    (fun i (s : Span.interval) ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b
         (Printf.sprintf
            "\n    {\"corr\": %d, \"stage\": \"%s\", \"t0\": %d, \"t1\": %d, \"cycles\": %d}"
            s.Span.corr
            (Trace.stage_label s.Span.stage)
            s.Span.t0 s.Span.t1 s.Span.cycles))
    d.d_spans;
  Buffer.add_string b "\n  ],\n  \"metrics\": ";
  Buffer.add_string b
    (Timeseries.views_to_json ~interval_ns:d.d_interval_ns d.d_metrics);
  Buffer.add_string b "}\n";
  Buffer.contents b

let write_dumps t ~prefix =
  List.mapi
    (fun i d ->
       let path = Printf.sprintf "%s-%d.json" prefix i in
       let oc = open_out path in
       output_string oc (dump_to_json d);
       close_out oc;
       path)
    (dumps t)
