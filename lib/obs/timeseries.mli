(** Time-series telemetry: periodic snapshots of registered gauges and
    rate counters into bounded per-metric rings.

    A {!t} owns a registry of named sources and a sampling grid on
    virtual time. Layers register sources when they are constructed
    (switch queue depth, kernel dispatch totals, TCP retransmits, ...);
    the simulation engine calls {!tick_current} as time advances and a
    sample of every source is taken whenever the clock crosses a grid
    point. Under [Engine.Cluster] with more than one shard the per-step
    tick is disabled and the cluster ticks at every epoch barrier
    instead, with the deterministic epoch deadline as [now] — so the
    sampled stream depends only on the seed and the shard count, never
    on the worker-domain count (same [--jobs] invariance as the trace
    stream).

    Two source kinds:
    - a {e gauge} is an instantaneous read function ([unit -> float]):
      queue depth, busy backlog, current RTO;
    - a {e rate} is a cumulative total ([unit -> int]); each sample
      records the {e delta} since the previous sample, and the running
      total survives ring wraparound for Prometheus-style export. *)

type t

val create : ?interval_ns:int -> ?capacity:int -> unit -> t
(** [interval_ns] is the sampling-grid pitch in virtual ns (default
    {!default_interval_ns}); [capacity] bounds each per-metric ring
    (default {!default_capacity}, oldest samples fall off). *)

val default_interval_ns : int
val default_capacity : int

val interval_ns : t -> int

(** {1 Source registry} *)

val register_gauge : t -> string -> (unit -> float) -> unit
(** Last-wins: re-registering a name replaces the read function but
    keeps the ring, so a component re-created under the same name
    continues its series instead of double-reporting. *)

val register_rate : t -> string -> (unit -> int) -> unit
(** The total is read once at registration to set the delta baseline;
    re-registering likewise rebaselines (a fresh component restarting
    from 0 does not produce a negative delta). *)

val unregister : t -> string -> unit
(** Drop the source and its ring (e.g. TCP teardown). *)

(** {1 Sampling} *)

val tick : t -> now:int -> unit
(** Sample every source once if [now] has reached the next grid point,
    stamping the sample with the grid time; then advance the grid past
    [now]. If the clock ran backwards by more than one interval (a new
    engine started in the same process) the grid realigns to [now]'s
    interval. O(1) when no grid point was crossed. *)

val sample : t -> now:int -> unit
(** Unconditionally sample every source stamped at [now] (used once at
    the end of a run so the final state is always captured). *)

(** {1 Ambient instance}

    The engine's per-step hook and the cluster's barrier hook read the
    ambient instance so construction order never matters. Root domain
    only — worker domains never tick (the cluster ticks on the main
    domain at barriers). *)

val set_current : t -> unit
val clear_current : unit -> unit
val current : unit -> t option

val tick_current : now:int -> unit
(** [tick] on the ambient instance; no-op when none is installed. *)

(** {1 Reading and export} *)

type kind = Gauge | Rate

type view = {
  name : string;
  kind : kind;
  cum : int;  (** rates: cumulative delta since registration; 0 for gauges *)
  samples : (int * float) list;  (** (grid ts, value), oldest first *)
}

val series : t -> view list
(** Every registered series with its full retained ring, sorted by
    name (deterministic export order). *)

val window : t -> last:int -> view list
(** Like {!series} but each ring truncated to its most recent [last]
    samples — the flight recorder's metric window. *)

val to_json : ?meta:(string * string) list -> t -> string
(** Schema ["ashs-telemetry/1"]: interval, optional string metadata,
    and one entry per series with kind, cumulative total and the
    retained [[ts, value]] samples. Deterministic byte-for-byte for a
    deterministic run. *)

val views_to_json : ?meta:(string * string) list -> interval_ns:int ->
  view list -> string
(** The serializer behind {!to_json}, usable on a {!window} slice. *)

val to_prometheus : t -> string
(** Prometheus exposition text: one [# TYPE] line and one sample per
    series. Rates export as [counter] with the cumulative total,
    gauges as [gauge] with the last sampled value (skipped when never
    sampled). Names are sanitized to the metric charset and prefixed
    ["ash_"]. *)
