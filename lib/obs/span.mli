(** Stage spans: paired begin/end markers over the trace stream.

    A span brackets one causal stage of one message's processing. The
    span clock is [event ts + off]: virtual time is frozen while an
    engine event runs, so emission sites pass [off] — the work already
    charged to the CPU model but not yet reflected in the clock (kernel
    horizon backlog plus undrained machine-meter nanoseconds). This
    makes nested spans inside a single dispatch carry their real
    modelled durations instead of collapsing to zero. *)

val begin_span : corr:int -> ?off:int -> Trace.stage -> unit
(** Emit a {!Trace.kind.Span_begin} for message [corr], if that
    message's spans are sampled ({!Trace.span_on}). *)

val end_span : corr:int -> ?off:int -> ?cycles:int -> Trace.stage -> unit
(** Emit the matching {!Trace.kind.Span_end}; [cycles] is the CPU work
    metered inside the span. *)

type interval = {
  corr : int;
  stage : Trace.stage;
  t0 : int;  (** span-clock open, virtual ns *)
  t1 : int;  (** span-clock close, [>= t0] *)
  cycles : int;
}

val intervals : Trace.event list -> interval list
(** Pair begins with ends per (message, stage), in end order. Nested
    same-stage spans pop LIFO; ends without a begin are dropped. *)

val unclosed : Trace.event list -> (int * Trace.stage * int) list
(** Begins left open at the end of the stream, as
    [(corr, stage, t0)], sorted. *)

val duration : interval -> int
val pp_interval : Format.formatter -> interval -> unit
