(** Render a recorder's trace and metrics as text or JSON. *)

val default_max_events : int

val pp_recorder :
  ?max_events:int -> Format.formatter -> Trace.recorder -> unit
(** Text dump: the most recent [max_events] events (negative = all),
    then counters and histogram summaries. *)

val to_json : Trace.recorder -> string
(** Full machine-readable dump: every retained event plus counters and
    histogram summaries, as a single JSON object. *)

val event_to_json : Trace.event -> string
(** One event as a JSON object (seq/ts/corr/kind plus typed fields) —
    the element format of {!to_json}'s ["events"] array, shared with
    the flight recorder's dumps. *)

val to_chrome_json :
  ?shards:int -> ?jobs:int -> ?host_cores:int -> Trace.recorder -> string
(** Chrome-trace-event JSON (loadable in Perfetto / chrome://tracing).
    One "process" per message (pid = correlation id), one thread per
    stage, B/E pairs from matched span intervals, instants for other
    correlated events; timestamps in span-clock microseconds, sorted
    non-decreasing. When [shards > 1], process names carry the
    message's home shard (correlation ids are strided, so shard
    [= (pid - 1) mod shards]) plus the jobs/host-core counts, so
    Perfetto views of sharded runs are labeled per shard. *)
