type histo = { mutable samples : float list; mutable count : int }

type t = {
  counters : (string, int ref) Hashtbl.t;
  histos : (string, histo) Hashtbl.t;
  gauges : (string, unit -> float) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    histos = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
  }

(* Hot path: called once per traced event. [Hashtbl.find] + handler
   avoids the option allocation of [find_opt]; the raise only happens
   the first time a counter is seen. *)
let incr t ?(by = 1) name =
  match Hashtbl.find t.counters name with
  | r -> r := !r + by
  | exception Not_found -> Hashtbl.add t.counters name (ref by)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counter_ref t name =
  match Hashtbl.find t.counters name with
  | r -> r
  | exception Not_found ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let histo_ref t name =
  match Hashtbl.find t.histos name with
  | h -> h
  | exception Not_found ->
    let h = { samples = []; count = 0 } in
    Hashtbl.add t.histos name h;
    h

let observe_ref h v =
  h.samples <- v :: h.samples;
  h.count <- h.count + 1

(* Zero-valued cells (interned but never bumped, or zeroed by [clear])
   are not observations; keep them out of dumps. *)
let counters t =
  Hashtbl.fold
    (fun name r acc -> if !r = 0 then acc else (name, !r) :: acc)
    t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let observe t name v =
  match Hashtbl.find t.histos name with
  | h ->
    h.samples <- v :: h.samples;
    h.count <- h.count + 1
  | exception Not_found ->
    Hashtbl.add t.histos name { samples = [ v ]; count = 1 }

type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summary_of = function
  | [] -> None
  | samples ->
    let s = Ash_util.Stats.summarize samples in
    let p q = Ash_util.Stats.percentile q samples in
    Some
      {
        count = s.Ash_util.Stats.n;
        min = s.Ash_util.Stats.min;
        max = s.Ash_util.Stats.max;
        mean = s.Ash_util.Stats.mean;
        p50 = p 50.;
        p90 = p 90.;
        p99 = p 99.;
      }

let histogram t name =
  match Hashtbl.find_opt t.histos name with
  | None -> None
  | Some h -> summary_of h.samples

let histograms t =
  Hashtbl.fold
    (fun name h acc ->
       match summary_of h.samples with
       | Some s -> (name, s) :: acc
       | None -> acc)
    t.histos []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Zero in place rather than resetting the tables: emission paths may
   hold interned {!counter_ref}/{!histo_ref} handles, which must stay
   live across a clear. *)
let clear t =
  Hashtbl.iter (fun _ r -> r := 0) t.counters;
  Hashtbl.iter
    (fun _ h ->
       h.samples <- [];
       h.count <- 0)
    t.histos

(* Gauges are read functions, not stored values: registration is
   last-wins (re-creating a component under the same name replaces its
   predecessor's closure rather than double-reporting). *)
let register_gauge t name f = Hashtbl.replace t.gauges name f

let unregister_gauge t name = Hashtbl.remove t.gauges name

let gauge t name =
  match Hashtbl.find_opt t.gauges name with Some f -> Some (f ()) | None -> None

let gauges t =
  Hashtbl.fold (fun name f acc -> (name, f ()) :: acc) t.gauges []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d min=%.0f mean=%.1f p50=%.0f p90=%.0f p99=%.0f max=%.0f" s.count
    s.min s.mean s.p50 s.p90 s.p99 s.max
