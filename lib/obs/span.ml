(* Stage spans over the trace stream.

   Virtual time does not advance while an engine event runs, so raw
   event timestamps would collapse every span opened and closed inside
   one dispatch to zero length. Emission sites therefore pass [off],
   the work already charged but not yet reflected in the clock (kernel
   horizon backlog plus undrained machine-meter nanoseconds); the span
   clock is [event ts + off], which counts each charge exactly once. *)

type interval = {
  corr : int;
  stage : Trace.stage;
  t0 : int;
  t1 : int;
  cycles : int;
}

let begin_span ~corr ?(off = 0) stage =
  if Trace.span_on corr then Trace.emit (Trace.Span_begin { corr; stage; off })

let end_span ~corr ?(off = 0) ?(cycles = 0) stage =
  if Trace.span_on corr then
    Trace.emit (Trace.Span_end { corr; stage; off; cycles })

(* Pair begins with ends per (corr, stage). Nested same-stage spans pop
   LIFO; an end without a begin is dropped; leftover begins are
   reported by [unclosed]. *)
let fold evs =
  let open Trace in
  let stacks : (int * stage, int list) Hashtbl.t = Hashtbl.create 64 in
  let push key v =
    let prev = Option.value ~default:[] (Hashtbl.find_opt stacks key) in
    Hashtbl.replace stacks key (v :: prev)
  in
  let pop key =
    match Hashtbl.find_opt stacks key with
    | None | Some [] -> None
    | Some (v :: rest) ->
      Hashtbl.replace stacks key rest;
      Some v
  in
  let intervals = ref [] in
  List.iter
    (fun e ->
      match e.kind with
      | Span_begin { corr; stage; off } -> push (corr, stage) (e.ts + off)
      | Span_end { corr; stage; off; cycles } -> (
        match pop (corr, stage) with
        | None -> ()
        | Some t0 ->
          let t1 = max t0 (e.ts + off) in
          intervals := { corr; stage; t0; t1; cycles } :: !intervals)
      | _ -> ())
    evs;
  let leftover =
    Hashtbl.fold
      (fun (corr, stage) ts acc ->
        List.fold_left (fun acc t0 -> (corr, stage, t0) :: acc) acc ts)
      stacks []
  in
  (List.rev !intervals, List.sort compare leftover)

let intervals events = fst (fold events)
let unclosed events = snd (fold events)

let duration i = i.t1 - i.t0

let pp_interval ppf i =
  Format.fprintf ppf "corr=%d %s [%d, %d] %dns cycles=%d" i.corr
    (Trace.stage_label i.stage) i.t0 i.t1 (duration i) i.cycles
